"""Fixture: ``acts`` never reaches the metrics table (planted gap)."""

from dataclasses import dataclass


@dataclass(slots=True)
class ControllerStats:
    reads_served: int = 0
    acts: int = 0
