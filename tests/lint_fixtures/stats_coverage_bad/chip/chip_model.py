"""Fixture: chip stats are covered; the planted gaps are controller-side."""

from dataclasses import dataclass


@dataclass
class ChipStats:
    acts: int = 0
