"""Fixture: ``acts`` is missing and ``row_hits`` is stale (two plants)."""

CONTROLLER_METRICS = {
    "reads_served": ("sim_reads_served_total", "Reads served"),
    "row_hits": ("sim_row_hits_total", "stale: names no live field"),
}

CHIP_METRICS = {
    "acts": ("chip_acts_total", "ACTs applied by the chip model"),
}
