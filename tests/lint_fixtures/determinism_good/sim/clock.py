"""Fixture: seeded RNG, sorted set iteration, no wall clocks."""

import numpy as np


class Sampler:
    def __init__(self, seed):
        self.pending_rows = set()
        self.rng = np.random.default_rng(seed)

    def draw(self):
        return self.rng.random()

    def order(self):
        return [row for row in sorted(self.pending_rows)]
