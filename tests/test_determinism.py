"""Determinism guarantees the parallel orchestrator depends on.

Every ``SimResult``-producing entry point takes an explicit seed, and two
runs with equal seeds must be *bit-identical* — otherwise sharding sweep
points across worker processes (or replaying them from the on-disk cache)
would change results.
"""

from __future__ import annotations

import pytest

from repro.orchestrator import (
    Sweep,
    Variant,
    axis,
    execute_point,
    mix_workloads,
    result_to_dict,
)
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.sim.trace import TraceProfile
from repro.workloads.mixes import mix_for


def mix(cores: int = 8):
    return [TraceProfile("d%d" % i, mpki=20.0, row_locality=0.75) for i in range(cores)]


CONFIGS = [
    pytest.param(SystemConfig(refresh_mode="baseline"), id="baseline"),
    pytest.param(SystemConfig(refresh_mode="elastic"), id="elastic"),
    pytest.param(
        SystemConfig(refresh_mode="hira", tref_slack_acts=4, para_nrh=128.0),
        id="hira-para",
    ),
]


class TestBitIdenticalRuns:
    @pytest.mark.parametrize("config", CONFIGS)
    def test_same_seed_same_bits(self, config):
        a = System(config, mix(), seed=11, instr_budget=8_000).run()
        b = System(config, mix(), seed=11, instr_budget=8_000).run()
        # Full structural equality, floats included — not approx.
        assert result_to_dict(a) == result_to_dict(b)

    def test_different_seed_differs(self):
        config = SystemConfig(refresh_mode="baseline")
        a = System(config, mix(), seed=11, instr_budget=8_000).run()
        b = System(config, mix(), seed=12, instr_budget=8_000).run()
        assert result_to_dict(a) != result_to_dict(b)

    def test_mix_generation_is_seeded(self):
        assert [p.name for p in mix_for(3)] == [p.name for p in mix_for(3)]
        assert [p.name for p in mix_for(3, seed=99)] == [
            p.name for p in mix_for(3, seed=99)
        ]

    def test_sweep_points_are_self_contained(self):
        """A point re-executed from its own payload reproduces itself."""
        sweep = Sweep(
            name="det",
            axes=(axis("cfg", Variant.make("HiRA-2", refresh_mode="hira", tref_slack_acts=2)),),
            workloads=mix_workloads(1),
            instr_budget=6_000,
        )
        point = sweep.expand()[0]
        assert result_to_dict(execute_point(point)) == result_to_dict(execute_point(point))


class TestExplicitSeedPlumbing:
    def test_system_requires_no_hidden_state(self):
        """Seed is an explicit System argument with no global RNG fallback."""
        import inspect

        params = inspect.signature(System.__init__).parameters
        assert "seed" in params

    def test_cli_simulate_exposes_seed(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["simulate", "--seed", "7", "--instructions", "1000"]
        )
        assert args.seed == 7

    def test_benchmark_helpers_thread_seeds(self):
        """conftest helpers derive per-run seeds from explicit bases."""
        import inspect

        import benchmarks.conftest as bc

        assert "seed_base" in inspect.signature(bc.run_config).parameters
        assert "seed" in inspect.signature(bc.run_profiles).parameters
