"""§4 experiment drivers: coverage, second-ACT verification, bank variation."""

import pytest

from repro.chip.vendor import VendorClass
from repro.experiments.bank_variation import (
    coverage_identical_across_banks,
    per_bank_normalized_nrh,
)
from repro.experiments.coverage import (
    algorithm1_coverage,
    coverage_distribution,
    pair_passes,
    tested_row_sample as row_sample,
)
from repro.experiments.modules import (
    TESTED_MODULES,
    build_module_chip,
    build_non_hira_chip,
)
from repro.experiments.second_act import characterize_normalized_nrh, pick_dummy_row
from repro.softmc.host import SoftMCHost

from tests.conftest import isolated_pair, non_isolated_pair


class TestTestedRowSample:
    def test_three_chunks(self, chip):
        rows = row_sample(chip.geometry, chunk=64)
        assert len(rows) == 3 * 64
        assert rows[0] == 0
        assert rows[-1] == chip.geometry.rows_per_bank - 1

    def test_stride_subsamples(self, chip):
        full = row_sample(chip.geometry, chunk=64)
        strided = row_sample(chip.geometry, chunk=64, stride=8)
        assert len(strided) == len(full) // 8
        assert set(strided) <= set(full)


class TestAlgorithm1:
    def test_isolated_pair_passes(self, chip, host):
        row_a, row_b = isolated_pair(chip)
        assert pair_passes(host, 0, row_a, row_b, t1_ps=3_000, t2_ps=3_000)

    def test_non_isolated_pair_fails(self, chip, host):
        row_a, row_b = non_isolated_pair(chip)
        assert not pair_passes(host, 0, row_a, row_b, t1_ps=3_000, t2_ps=3_000)

    def test_coverage_matches_isolation_map(self, chip, host):
        row_a = chip.geometry.row_of(3, 10)
        candidates = [chip.geometry.row_of(sa, 20) for sa in range(chip.geometry.subarrays_per_bank)]
        measured = algorithm1_coverage(host, 0, row_a, candidates, 3_000, 3_000)
        expected = chip.isolation.coverage_of_subarray(
            3, list(range(chip.geometry.subarrays_per_bank))
        )
        # One candidate (same subarray) always fails; tolerance accordingly.
        assert measured == pytest.approx(expected, abs=0.1)

    def test_empty_candidates(self, chip, host):
        assert algorithm1_coverage(host, 0, 5, [5], 3_000, 3_000) == 0.0

    def test_distribution_summary(self, chip):
        rows = row_sample(chip.geometry, chunk=32, stride=8)
        dist = coverage_distribution(
            chip, 0, 3_000, 3_000, tested_rows=rows, rows_a=rows[:4]
        )
        assert len(dist.coverages) == 4
        assert 0.0 <= dist.minimum <= dist.average <= dist.maximum <= 1.0


class TestModules:
    def test_seven_modules(self):
        assert len(TESTED_MODULES) == 7
        assert [m.label for m in TESTED_MODULES] == ["A0", "A1", "B0", "B1", "C0", "C1", "C2"]

    def test_module_chip_buildable(self):
        chip = build_module_chip(TESTED_MODULES[0])
        assert chip.geometry.rows_per_bank == 32_768  # 4 Gbit, 16 banks, 1 KiB rows

    def test_8gbit_module_larger(self):
        chip = build_module_chip(TESTED_MODULES[2])  # B0
        assert chip.geometry.rows_per_bank == 65_536

    def test_non_hira_builders(self):
        for vendor in (VendorClass.SAMSUNG_LIKE, VendorClass.MICRON_LIKE):
            chip = build_non_hira_chip(vendor)
            assert chip.design.vendor is vendor
        with pytest.raises(ValueError):
            build_non_hira_chip(VendorClass.HYNIX_LIKE)


class TestSecondAct:
    def test_ratio_near_two_on_hynix(self, chip):
        victims = [chip.geometry.row_of(2, off) for off in (16, 48, 80)]
        results = characterize_normalized_nrh(chip, 0, victims)
        assert results
        for result in results:
            assert 1.0 < result.normalized < 2.9

    def test_ratio_one_on_samsung_like(self, samsung_chip):
        victims = [samsung_chip.geometry.row_of(2, 16)]
        results = characterize_normalized_nrh(samsung_chip, 0, victims)
        for result in results:
            # Second ACT ignored: threshold unchanged (within noise).
            assert result.normalized == pytest.approx(1.0, abs=0.15)

    def test_ratio_one_on_micron_like(self, micron_chip):
        victims = [micron_chip.geometry.row_of(2, 16)]
        results = characterize_normalized_nrh(micron_chip, 0, victims)
        for result in results:
            assert result.normalized == pytest.approx(1.0, abs=0.15)

    def test_pick_dummy_isolated(self, chip):
        victim = chip.geometry.row_of(2, 30)
        dummy = pick_dummy_row(chip, victim)
        assert dummy is not None
        assert chip.isolation.isolated(
            chip.geometry.subarray_of_row(victim),
            chip.geometry.subarray_of_row(dummy),
        )


class TestBankVariation:
    def test_pairs_identical_across_banks(self, chip):
        pairs = [isolated_pair(chip), non_isolated_pair(chip)]
        assert coverage_identical_across_banks(chip, pairs, banks=[0, 3, 7])

    def test_per_bank_thresholds(self, chip):
        victims = [chip.geometry.row_of(2, 24)]
        by_bank = per_bank_normalized_nrh(chip, victims, banks=[0, 1])
        assert set(by_bank) == {0, 1}
        for results in by_bank.values():
            assert results and results[0].normalized > 1.3
