"""The second-opinion oracle: planted violations per rule, agreement, FP-freedom.

Every planted test drives the *auditor's* hooks to build the command
stream, then feeds ``auditor.records`` to the oracle — one source of
planted commands, two independent checkers.  Where both implement a rule
the test asserts both flag it; state rules only the oracle carries are
asserted oracle-side alone.
"""

from __future__ import annotations

import json

import pytest

from repro.sim.audit import CommandAuditor, attach_auditors, records_from_log
from repro.sim.config import SystemConfig
from repro.sim.oracle import (
    RuleTable,
    TimingOracle,
    build_rule_table,
    build_rule_table_cycles,
    oracle_for_config,
    table_for_log,
)
from repro.sim.system import System
from repro.sim.trace import TraceProfile


def _setup(mode="none", granularity="all_bank"):
    config = SystemConfig(
        refresh_mode=mode, refresh_granularity=granularity, cores=1
    )
    mix = [
        TraceProfile("t", mpki=10.0, row_locality=0.5, read_fraction=0.6,
                     working_set_rows=1024)
    ]
    system = System(config, mix, seed=1, instr_budget=1_000)
    mc = system.controllers[0]
    return mc, CommandAuditor(mc), oracle_for_config(config)


def _rules(oracle, auditor):
    """The distinct rule names the oracle flags for the auditor's stream."""
    return {v.rule.split("(")[0] for v in oracle.check(auditor.records)}


class TestRuleTableGeneration:
    def test_generated_solely_from_timing_params(self):
        # Independence is structural: the oracle module must not import
        # anything from the simulator package (controller, audit, config).
        import inspect

        import repro.sim.oracle as oracle_mod

        source = inspect.getsource(oracle_mod)
        for line in source.splitlines():
            stripped = line.strip()
            if stripped.startswith(("import ", "from ")):
                assert "repro" not in stripped, stripped

    def test_table_covers_every_accreted_rule(self):
        mc, __, oracle = _setup()
        names = {rid.split("(")[0] for rid in oracle.table.rule_ids()}
        assert {
            "tRC", "tRAS", "tRP", "tRCD", "tRTP", "tWR", "tRRD_S", "tRRD_L",
            "tRFC", "tRFC_sb", "tREFSB_GAP", "tBL", "tBL+tRTW", "tBL+tWTR",
            "tFAW", "tREFI-cadence",
        } <= names

    def test_json_round_trip_is_lossless(self):
        __, __, oracle = _setup(mode="baseline", granularity="same_bank")
        payload = oracle.table.to_json()
        rebuilt = RuleTable.from_json(json.loads(json.dumps(payload)))
        assert rebuilt.to_json() == payload
        assert rebuilt == oracle.table

    def test_cycle_domain_matches_controller_conversion(self):
        mc, auditor, oracle = _setup()
        table = oracle.table
        by_id = {r.rule_id: r for r in table.pair_rules}
        assert by_id["tRC(ACT->ACT)@same-bank"].min_delay == mc.trc_c
        assert by_id["tRCD(ACT->RD)@same-bank"].min_delay == mc.trcd_c
        assert table.window_rules[0].window == mc.tfaw_c
        assert table.hira_gap == mc.hira_gap_c


class TestPlantedPairViolations:
    """One mutated log per rule-table entry; the oracle flags exactly it."""

    def test_trc(self):
        mc, auditor, oracle = _setup()
        auditor.on_act(1000, 0, 0, 5)
        auditor.on_pre(1000 + mc.tras_c, 0, 0)
        auditor.on_act(1000 + mc.trc_c - 1, 0, 0, 6)
        # tRC - tRAS - 1 < tRP: the early re-ACT necessarily trips tRP too.
        assert "tRC" in _rules(oracle, auditor)
        assert any("tRC" in p for p in auditor.violations())

    def test_trp_only(self):
        mc, auditor, oracle = _setup()
        auditor.on_act(1000, 0, 0, 5)
        pre = 1000 + mc.tras_c
        auditor.on_pre(pre, 0, 0)
        act2 = pre + mc.trp_c - 1
        if act2 - 1000 < mc.trc_c:  # ceiling rounding can make trc > tras+trp-1
            act2 = 1000 + mc.trc_c
        auditor.on_act(act2, 0, 0, 6)
        assert _rules(oracle, auditor) == {"tRP"}
        assert any("tRP" in p for p in auditor.violations())

    def test_tras_only(self):
        mc, auditor, oracle = _setup()
        auditor.on_act(1000, 0, 0, 5)
        auditor.on_pre(1000 + mc.tras_c - 1, 0, 0)
        assert _rules(oracle, auditor) == {"tRAS"}
        assert any("tRAS" in p for p in auditor.violations())

    @pytest.mark.parametrize("is_write", [False, True])
    def test_trcd_only(self, is_write):
        mc, auditor, oracle = _setup()
        auditor.on_act(1000, 0, 0, 5)
        auditor.on_col(1000 + mc.trcd_c - 1, 0, 0, is_write=is_write)
        assert _rules(oracle, auditor) == {"tRCD"}
        assert any("tRCD" in p for p in auditor.violations())

    def test_trtp_only(self):
        mc, auditor, oracle = _setup()
        auditor.on_act(1000, 0, 0, 5)
        rd = 1000 + mc.tras_c  # tRAS satisfied at the PRE below
        auditor.on_col(rd, 0, 0, is_write=False)
        auditor.on_pre(rd + mc.trtp_c - 1, 0, 0)
        assert _rules(oracle, auditor) == {"tRTP"}
        assert any("tRTP" in p for p in auditor.violations())

    def test_twr_only(self):
        mc, auditor, oracle = _setup()
        auditor.on_act(1000, 0, 0, 5)
        wr = 1000 + mc.trcd_c
        auditor.on_col(wr, 0, 0, is_write=True)
        pre = wr + mc.tcwl_c + mc.tbl_c + mc.twr_c - 1
        assert pre - 1000 >= mc.tras_c
        auditor.on_pre(pre, 0, 0)
        assert _rules(oracle, auditor) == {"tWR"}
        assert any("tWR" in p for p in auditor.violations())

    def test_trrd_s_only(self):
        mc, auditor, oracle = _setup()
        cross = mc.config.geometry.banks_per_bankgroup
        auditor.on_act(1000, 0, 0, 5)
        auditor.on_act(1000 + mc.trrd_s_c - 1, 0, cross, 6)
        assert _rules(oracle, auditor) == {"tRRD_S"}
        assert any("tRRD_S" in p for p in auditor.violations())

    def test_trrd_l_only(self):
        mc, auditor, oracle = _setup()
        auditor.on_act(1000, 0, 0, 5)
        auditor.on_act(1000 + mc.trrd_s_c, 0, 1, 6)  # same group
        assert _rules(oracle, auditor) == {"tRRD_L"}
        assert any("tRRD_L" in p for p in auditor.violations())

    def test_tfaw_only(self):
        mc, auditor, oracle = _setup()
        cross = mc.config.geometry.banks_per_bankgroup
        # Four cross-group ACTs then a fifth to a fresh group-0 bank: all
        # tRRD-legal, window span below tFAW.
        banks = [0, cross, 2 * cross, 3 * cross, 1]
        for i, bank in enumerate(banks):
            auditor.on_act(1000 + i * mc.trrd_s_c, 0, bank, 3)
        assert 4 * mc.trrd_s_c < mc.tfaw_c
        assert _rules(oracle, auditor) == {"tFAW"}
        assert any("tFAW" in p for p in auditor.violations())

    def test_ref_busy_window(self):
        mc, auditor, oracle = _setup()
        auditor.on_ref(1000, 0)
        auditor.on_act(1000 + mc.trfc_c - 1, 0, 0, 5)
        assert _rules(oracle, auditor) == {"tRFC"}
        assert any("during REF" in p for p in auditor.violations())

    def test_refsb_busy_window(self):
        mc, auditor, oracle = _setup()
        auditor.on_refsb(1000, 0, 0)
        auditor.on_act(1000 + mc.trfc_sb_c - 1, 0, 0, 5)
        assert _rules(oracle, auditor) == {"tRFC_sb"}
        assert any("during REFsb" in p for p in auditor.violations())

    def test_ref_to_refsb_interlock(self):
        # The satellite bug: a same-bank refresh inside a rank-wide tRFC
        # busy window.
        mc, auditor, oracle = _setup()
        auditor.on_ref(1000, 0)
        auditor.on_refsb(1000 + mc.trfc_c - 1, 0, 0)
        assert _rules(oracle, auditor) == {"tRFC"}
        assert any(
            "REFsb to rank 0 during REF" in p for p in auditor.violations()
        )

    def test_refsb_to_ref_interlock(self):
        mc, auditor, oracle = _setup()
        auditor.on_refsb(1000, 0, 0)
        auditor.on_ref(1000 + mc.trfc_sb_c - 1, 0)
        assert _rules(oracle, auditor) == {"tRFC_sb"}
        assert any("REFsb in flight" in p for p in auditor.violations())

    def test_trefsb_gap_only(self):
        mc, auditor, oracle = _setup()
        auditor.on_refsb(1000, 0, 0)
        auditor.on_refsb(1000 + mc.trefsb_gap_c - 1, 0, 1)  # sibling bank
        assert _rules(oracle, auditor) == {"tREFSB_GAP"}
        assert any("tREFSB_GAP" in p for p in auditor.violations())

    def test_trp_before_ref(self):
        mc, auditor, oracle = _setup()
        auditor.on_act(1000, 0, 0, 5)
        pre = 1000 + mc.tras_c
        auditor.on_pre(pre, 0, 0)
        auditor.on_ref(pre + mc.trp_c - 1, 0)
        assert _rules(oracle, auditor) == {"tRP"}
        assert any("after PRE" in p for p in auditor.violations())

    def test_trp_before_refsb(self):
        mc, auditor, oracle = _setup()
        auditor.on_act(1000, 0, 0, 5)
        pre = 1000 + mc.tras_c
        auditor.on_pre(pre, 0, 0)
        auditor.on_refsb(pre + mc.trp_c - 1, 0, 0)
        assert _rules(oracle, auditor) == {"tRP"}
        assert any("after PRE" in p for p in auditor.violations())


class TestPlantedBusViolations:
    def _two_open_banks(self, mc, auditor):
        cross = mc.config.geometry.banks_per_bankgroup
        auditor.on_act(1000, 0, 0, 5)
        auditor.on_act(1000 + mc.trrd_s_c, 0, cross, 6)
        return cross

    def test_tbl_overlap_only(self):
        mc, auditor, oracle = _setup()
        cross = self._two_open_banks(mc, auditor)
        rd = 1000 + mc.tras_c  # both banks long past tRCD
        auditor.on_col(rd, 0, 0, is_write=False)
        auditor.on_col(rd + mc.tbl_c - 1, 0, cross, is_write=False)
        assert _rules(oracle, auditor) == {"tBL"}
        assert any("data-bus conflict" in p for p in auditor.violations())

    def test_trtw_only(self):
        mc, auditor, oracle = _setup()
        cross = self._two_open_banks(mc, auditor)
        rd = 1000 + mc.tras_c
        auditor.on_col(rd, 0, 0, is_write=False)
        # WR burst starting one cycle inside the read→write turnaround.
        wr = rd + mc.tcl_c + mc.tbl_c + mc.trtw_c - 1 - mc.tcwl_c
        auditor.on_col(wr, 0, cross, is_write=True)
        assert _rules(oracle, auditor) == {"tBL+tRTW"}
        assert any("tRTW" in p for p in auditor.violations())

    def test_twtr_only(self):
        mc, auditor, oracle = _setup()
        cross = self._two_open_banks(mc, auditor)
        wr = 1000 + mc.tras_c
        auditor.on_col(wr, 0, 0, is_write=True)
        rd = wr + mc.tcwl_c + mc.tbl_c + mc.twtr_c - 1 - mc.tcl_c
        auditor.on_col(rd, 0, cross, is_write=False)
        assert _rules(oracle, auditor) == {"tBL+tWTR"}
        assert any("tWTR" in p for p in auditor.violations())


class TestPlantedCadenceViolations:
    def test_ref_cadence_gap(self):
        mc, auditor, oracle = _setup(mode="baseline")
        auditor.on_ref(0, 0)
        auditor.on_ref(10 * mc.trefi_c, 0)
        assert _rules(oracle, auditor) == {"tREFI-cadence"}
        assert any("refresh deadline" in p for p in auditor.violations())

    def test_refsb_per_bank_cadence_gap(self):
        mc, auditor, oracle = _setup(mode="baseline", granularity="same_bank")
        auditor.on_refsb(0, 0, 3)
        auditor.on_refsb(10 * mc.trefi_c, 0, 3)
        # Endpoint starvation also fires for every *other* bank of the
        # rank, so assert membership, not exactness.
        violations = oracle.check(auditor.records)
        gap_hits = [
            v for v in violations
            if v.rule.startswith("tREFI-cadence(REFSB)")
            and "since the previous" in v.message
        ]
        assert len(gap_hits) == 1
        assert any(
            "refresh deadline violation on bank" in p
            for p in auditor.violations()
        )

    def test_starved_rank_flagged_from_endpoints(self):
        mc, auditor, oracle = _setup(mode="baseline")
        span = 10 * mc.trefi_c
        auditor.on_act(0, 0, 0, 1)
        auditor.on_pre(mc.tras_c, 0, 0)
        auditor.on_act(span, 0, 0, 2)
        assert "tREFI-cadence" in _rules(oracle, auditor)
        assert any("no REF" in p for p in auditor.violations())


class TestOracleOnlyStateRules:
    """State rules the auditor does not carry: oracle-side coverage."""

    def test_act_to_open_bank(self):
        mc, auditor, oracle = _setup()
        auditor.on_act(1000, 0, 0, 5)
        auditor.on_act(1000 + mc.trc_c, 0, 0, 6)  # tRC-legal, never closed
        assert _rules(oracle, auditor) == {"open-bank"}

    def test_column_to_closed_bank(self):
        __, auditor, oracle = _setup()
        auditor.on_col(1000, 0, 0, is_write=False)
        assert _rules(oracle, auditor) == {"closed-bank"}

    def test_ref_with_open_bank(self):
        mc, auditor, oracle = _setup()
        auditor.on_act(1000, 0, 0, 5)
        auditor.on_ref(1000 + mc.tras_c + mc.trp_c, 0)
        assert _rules(oracle, auditor) == {"ref-open-bank"}
        assert any("open banks" in p for p in auditor.violations())

    def test_refsb_to_open_bank(self):
        mc, auditor, oracle = _setup()
        auditor.on_act(1000, 0, 0, 5)
        auditor.on_refsb(1000 + mc.tras_c + mc.trp_c, 0, 0)
        assert _rules(oracle, auditor) == {"refsb-open-bank"}
        assert any("REFsb to open bank" in p for p in auditor.violations())

    def test_hira_gap_must_be_exact(self):
        mc, auditor, oracle = _setup(mode="hira")
        eff = 1000 + mc.hira_gap_c + 1  # one cycle late
        auditor.on_hira_op(1000, 0, 0, 7, 9, eff, close=eff + mc.tras_c)
        assert "hira-gap" in _rules(oracle, auditor)
        assert any("HiRA second ACT gap" in p for p in auditor.violations())

    def test_nominal_hira_op_is_clean(self):
        mc, auditor, oracle = _setup(mode="hira")
        eff = 1000 + mc.hira_gap_c
        auditor.on_hira_op(1000, 0, 0, 7, 9, eff, close=eff + mc.tras_c)
        assert oracle.check(auditor.records) == []
        assert auditor.violations() == []


class TestNoFalsePositives:
    """Clean fuzzed logs from all three engines × both granularities."""

    @pytest.mark.parametrize("mode", ["baseline", "elastic", "hira"])
    @pytest.mark.parametrize("granularity", ["all_bank", "same_bank"])
    @pytest.mark.parametrize("seed", [7, 23])
    def test_engines_clean_under_oracle(self, mode, granularity, seed):
        config = SystemConfig(
            refresh_mode=mode, refresh_granularity=granularity, cores=4
        )
        mix = [
            TraceProfile(
                f"fp{seed}-{i}", mpki=25.0, row_locality=0.5,
                read_fraction=0.6, working_set_rows=2048,
            )
            for i in range(4)
        ]
        system = System(config, mix, seed=seed, instr_budget=5_000)
        auditors = attach_auditors(system)
        result = system.run(max_cycles=3_000_000)
        assert result.finished
        oracle = oracle_for_config(config)
        for auditor in auditors:
            assert auditor.violations() == []
            assert oracle.check_messages(auditor.records) == []


class TestLogInterchange:
    def test_export_replay_matches_live_check(self):
        config = SystemConfig(refresh_mode="hira", refresh_granularity="same_bank", cores=2)
        mix = [
            TraceProfile("x", mpki=20.0, row_locality=0.5, read_fraction=0.5,
                         working_set_rows=1024)
        ] * 2
        system = System(config, mix, seed=11, instr_budget=3_000)
        auditors = attach_auditors(system)
        assert system.run().finished
        auditor = auditors[0]
        live = oracle_for_config(config)
        payload = json.loads(json.dumps(auditor.export_log()))
        replayed = TimingOracle(table_for_log(payload))
        assert replayed.table == live.table
        live_v = [str(v) for v in live.check(auditor.records)]
        replay_v = [str(v) for v in replayed.check(records_from_log(payload))]
        assert replay_v == live_v == []

    def test_replay_still_flags_planted_violation(self):
        # Mutate an exported log: the replayed oracle must flag it — the
        # vacuous-table guard.
        mc, auditor, oracle = _setup()
        auditor.on_ref(1000, 0)
        auditor.on_refsb(1000 + mc.trfc_c - 1, 0, 0)
        payload = auditor.export_log()
        replayed = TimingOracle(table_for_log(payload))
        violations = replayed.check(records_from_log(payload))
        assert any(v.rule.startswith("tRFC(REF->REFSB)") for v in violations)

    def test_build_from_cycle_values_matches_timing_params(self):
        config = SystemConfig()
        geometry = config.geometry
        via_params = build_rule_table(
            config.timing,
            banks_per_bankgroup=geometry.banks_per_bankgroup,
            banks_per_rank=geometry.banks_per_rank,
            n_ranks=config.ranks_per_channel,
        )
        c = config.timing.to_cycles
        via_cycles = build_rule_table_cycles(
            trcd=c(config.timing.trcd), tras=c(config.timing.tras),
            trp=c(config.timing.trp), trc=c(config.timing.trc),
            trfc=c(config.timing.trfc), trefi=c(config.timing.trefi),
            tfaw=c(config.timing.tfaw), trrd_s=c(config.timing.trrd_s),
            trrd_l=c(config.timing.trrd_l), twr=c(config.timing.twr),
            trtp=c(config.timing.trtp), tcl=c(config.timing.tcl),
            tcwl=c(config.timing.tcwl), tbl=c(config.timing.tbl),
            trtw=c(config.timing.trtw), twtr=c(config.timing.twtr),
            trfc_sb=c(config.timing.trfc_sb),
            trefsb_gap=c(config.timing.trefsb_gap),
            hira_gap=c(config.timing.hira_t1 + config.timing.hira_t2),
            banks_per_bankgroup=geometry.banks_per_bankgroup,
            banks_per_rank=geometry.banks_per_rank,
            n_ranks=config.ranks_per_channel,
        )
        assert via_cycles == via_params
