"""Algorithm 2: threshold measurement with and without HiRA."""

import pytest

from repro.experiments.second_act import pick_dummy_row
from repro.rowhammer.threshold import (
    HammerTestConfig,
    measure_threshold,
    normalized_threshold,
    run_hammer_test,
)


@pytest.fixture()
def config(chip):
    victim = chip.geometry.row_of(2, 30)
    aggressors = chip.design.aggressors_for_victim(victim)
    dummy = pick_dummy_row(chip, victim)
    assert dummy is not None
    return HammerTestConfig(
        bank=0, victim=victim, aggressors=tuple(aggressors), dummy_row=dummy
    )


class TestRunHammerTest:
    def test_huge_count_flips(self, host, config):
        assert run_hammer_test(host, config, 390_000, with_hira=False)

    def test_tiny_count_does_not_flip(self, host, config):
        assert not run_hammer_test(host, config, 1_000, with_hira=False)

    def test_hira_protects_at_intermediate_count(self, host, config):
        phys = host.chip.design.logical_to_physical(config.victim)
        nrh = host.chip.variation.row_timing(0, phys).nrh
        count = int(nrh * 0.75)  # above threshold in total, below per half
        assert run_hammer_test(host, config, count, with_hira=False)
        assert not run_hammer_test(host, config, count, with_hira=True)


class TestMeasureThreshold:
    def test_threshold_near_half_intrinsic(self, host, config):
        """Double-sided exposure is ~2·HC, so measured ≈ NRH/2."""
        phys = host.chip.design.logical_to_physical(config.victim)
        nrh = host.chip.variation.row_timing(0, phys).nrh
        measured = measure_threshold(host, config, with_hira=False)
        assert measured == pytest.approx(nrh / 2, rel=0.25)

    def test_normalized_ratio_in_paper_range(self, host, config):
        without, with_h, ratio = normalized_threshold(host, config)
        assert with_h > without
        assert 1.0 < ratio < 2.9  # Table 4 spans 1.09–2.58

    def test_returns_hi_when_unflippable(self, host, config):
        assert measure_threshold(host, config, with_hira=False, lo=10, hi=100) == 100

    def test_resolution_bounds_bracket(self, host, config):
        a = measure_threshold(host, config, with_hira=False, resolution=4_096)
        b = measure_threshold(host, config, with_hira=False, resolution=128)
        assert abs(a - b) <= 4_096 + 2_048
