"""Result summarization helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import histogram, summarize
from repro.analysis.tables import format_table


class TestSummarize:
    def test_five_number_summary(self):
        box = summarize([1, 2, 3, 4, 5])
        assert box.minimum == 1 and box.maximum == 5
        assert box.median == 3
        assert box.mean == 3
        assert box.count == 5

    def test_iqr(self):
        box = summarize(range(101))
        assert box.iqr == pytest.approx(50.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_row_rendering(self):
        row = summarize([1.0, 2.0]).row("label")
        assert row[0] == "label"
        assert len(row) == 7


class TestHistogram:
    def test_fractions_sum_to_one(self):
        bins = histogram([1, 2, 2, 3, 3, 3], bins=3)
        assert sum(frac for __, __, frac in bins) == pytest.approx(1.0)

    def test_explicit_range(self):
        bins = histogram([5], bins=2, lo=0, hi=10)
        assert bins[0][0] == 0 and bins[-1][1] == 10

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            histogram([])


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equally wide

    def test_nonstring_cells(self):
        text = format_table(["x"], [[1.5], [None]])
        assert "1.5" in text and "None" in text


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
def test_summary_invariants(values):
    box = summarize(values)
    assert box.minimum <= box.q1 <= box.median <= box.q3 <= box.maximum
    assert box.minimum <= box.mean <= box.maximum
