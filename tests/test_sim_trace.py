"""Synthetic trace generation: statistics and determinism."""

import pytest

from repro.sim.trace import TraceGenerator, TraceProfile


def collect(gen, n=4_000):
    return [gen.next_access() for __ in range(n)]


class TestProfileValidation:
    def test_rejects_bad_mpki(self):
        with pytest.raises(ValueError):
            TraceProfile("x", mpki=0.0, row_locality=0.5)

    def test_rejects_bad_locality(self):
        with pytest.raises(ValueError):
            TraceProfile("x", mpki=10.0, row_locality=1.0)

    def test_rejects_bad_read_fraction(self):
        with pytest.raises(ValueError):
            TraceProfile("x", mpki=10.0, row_locality=0.5, read_fraction=1.5)

    def test_mean_gap(self):
        assert TraceProfile("x", mpki=20.0, row_locality=0.5).mean_gap == 50.0


class TestGenerator:
    def test_deterministic_for_seed(self):
        p = TraceProfile("x", mpki=15.0, row_locality=0.6)
        a = collect(TraceGenerator(p, 128, seed=5), 500)
        b = collect(TraceGenerator(p, 128, seed=5), 500)
        assert a == b

    def test_seeds_differ(self):
        p = TraceProfile("x", mpki=15.0, row_locality=0.6)
        a = collect(TraceGenerator(p, 128, seed=5), 500)
        b = collect(TraceGenerator(p, 128, seed=6), 500)
        assert a != b

    def test_mean_gap_matches_mpki(self):
        p = TraceProfile("x", mpki=25.0, row_locality=0.5)
        accesses = collect(TraceGenerator(p, 128, seed=1))
        mean_gap = sum(gap for gap, __, __ in accesses) / len(accesses)
        assert mean_gap == pytest.approx(p.mean_gap, rel=0.1)

    def test_row_locality_measured(self):
        p = TraceProfile("x", mpki=20.0, row_locality=0.8)
        accesses = collect(TraceGenerator(p, 128, seed=2))
        rows = [line // 128 for __, line, __ in accesses]
        same = sum(1 for a, b in zip(rows, rows[1:]) if a == b)
        assert same / len(rows) == pytest.approx(0.8, abs=0.05)

    def test_write_fraction(self):
        p = TraceProfile("x", mpki=20.0, row_locality=0.5, read_fraction=0.7)
        accesses = collect(TraceGenerator(p, 128, seed=3))
        writes = sum(1 for __, __, w in accesses if w)
        assert writes / len(accesses) == pytest.approx(0.3, abs=0.04)

    def test_working_set_respected(self):
        p = TraceProfile("x", mpki=20.0, row_locality=0.0, working_set_rows=32)
        accesses = collect(TraceGenerator(p, 128, seed=4))
        regions = {line // 128 for __, line, __ in accesses}
        assert len(regions) <= 32
