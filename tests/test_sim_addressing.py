"""MOP address mapping: bijectivity and interleaving structure."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.geometry import Geometry
from repro.sim.addressing import AddressMapper


@pytest.fixture(scope="module")
def mapper():
    return AddressMapper(Geometry(channels=2, ranks_per_channel=2))


class TestDecode:
    def test_consecutive_lines_share_row_within_mop_block(self, mapper):
        a = mapper.decode(0)
        b = mapper.decode(1)
        assert (a.channel, a.rank, a.bank, a.row) == (b.channel, b.rank, b.bank, b.row)

    def test_next_mop_block_changes_channel(self, mapper):
        a = mapper.decode(0)
        b = mapper.decode(mapper.mop_lines)
        assert b.channel != a.channel

    def test_rejects_negative(self, mapper):
        with pytest.raises(ValueError):
            mapper.decode(-1)

    def test_mop_must_divide_columns(self):
        with pytest.raises(ValueError):
            AddressMapper(Geometry(), mop_lines=3)

    def test_fields_in_range(self, mapper):
        geom = mapper.geometry
        for line in range(0, 100_000, 997):
            addr = mapper.decode(line)
            addr.validate(geom)


class TestInterleaving:
    def test_streaming_spreads_over_banks(self, mapper):
        geom = mapper.geometry
        banks = {
            (mapper.decode(line).channel, mapper.decode(line).rank, mapper.decode(line).bank)
            for line in range(0, 4 * geom.channels * geom.ranks_per_channel * geom.banks_per_rank * 4, 4)
        }
        assert len(banks) == geom.channels * geom.ranks_per_channel * geom.banks_per_rank

    def test_row_changes_only_after_full_sweep(self, mapper):
        first_row = mapper.decode(0).row
        geom = mapper.geometry
        lines_per_row_sweep = (
            mapper.mop_lines
            * geom.channels
            * geom.ranks_per_channel
            * geom.banks_per_rank
            * (geom.columns_per_row // mapper.mop_lines)
        )
        assert mapper.decode(lines_per_row_sweep - 1).row == first_row
        assert mapper.decode(lines_per_row_sweep).row != first_row or geom.rows_per_bank == 1


@given(st.integers(min_value=0, max_value=1 << 40))
def test_encode_decode_roundtrip(line):
    mapper = AddressMapper(Geometry(channels=2, ranks_per_channel=2))
    geom = mapper.geometry
    total_lines = (
        geom.channels
        * geom.ranks_per_channel
        * geom.banks_per_rank
        * geom.rows_per_bank
        * geom.columns_per_row
    )
    line %= total_lines
    assert mapper.encode(mapper.decode(line)) == line
