"""Table 2: HiRA-MC hardware cost estimates."""

import pytest

from repro.hwcost.report import (
    HIRA_MC_COMPONENTS,
    area_fraction_of_reference_die,
    component_estimates,
    overall_area_mm2,
    worst_case_query_latency_ns,
)
from repro.hwcost.sram_model import SramArray, estimate


class TestSramModel:
    def test_area_grows_with_bits(self):
        small = estimate(SramArray("a", entries=64, bits_per_entry=8))
        large = estimate(SramArray("b", entries=4_096, bits_per_entry=8))
        assert large.area_mm2 > small.area_mm2

    def test_latency_grows_with_area(self):
        small = estimate(SramArray("a", entries=64, bits_per_entry=8))
        large = estimate(SramArray("b", entries=4_096, bits_per_entry=8))
        assert large.access_latency_ns > small.access_latency_ns

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            SramArray("a", entries=0, bits_per_entry=8)


class TestTable2:
    """Calibration against the paper's CACTI numbers (±25%)."""

    @pytest.mark.parametrize(
        "name, area, latency",
        [
            ("Refresh Table", 0.00031, 0.07),
            ("RefPtr Table", 0.00683, 0.12),
            ("PR-FIFO", 0.00029, 0.07),
            ("Subarray Pairs Table (SPT)", 0.00180, 0.09),
        ],
    )
    def test_component_costs(self, name, area, latency):
        by_name = {e.array.name: e for e in component_estimates()}
        est = by_name[name]
        assert est.area_mm2 == pytest.approx(area, rel=0.25)
        assert est.access_latency_ns == pytest.approx(latency, rel=0.25)

    def test_overall_area_near_paper(self):
        # Paper: 0.00923 mm² per rank.
        assert overall_area_mm2() == pytest.approx(0.00923, rel=0.2)

    def test_area_fraction_tiny(self):
        # Paper: 0.0023% of a 22 nm processor die.
        assert area_fraction_of_reference_die() < 0.0001

    def test_worst_case_latency_below_trp(self):
        # Paper: 6.31 ns, below the nominal 14.5 ns tRP.
        latency = worst_case_query_latency_ns()
        assert latency == pytest.approx(6.31, rel=0.15)
        assert latency < 14.5

    def test_component_inventory(self):
        names = {a.name for a in HIRA_MC_COMPONENTS}
        assert names == {
            "Refresh Table",
            "RefPtr Table",
            "PR-FIFO",
            "Subarray Pairs Table (SPT)",
        }
