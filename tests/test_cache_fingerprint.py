"""The sweep cache must never replay results from different code.

PR 2 footgun: sweep-point cache keys hashed the ``SystemConfig`` but the
figure benches replayed pre-change results after scheduler edits until
someone deleted the cache directory by hand.  Two layers now prevent
that: the sweep-point key folds a source fingerprint of all of
``src/repro`` into the hash, and every ``ResultCache`` entry is stamped
with the fingerprint at write time and re-checked at read time.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

from repro.orchestrator import ResultCache, run_sweep
from repro.orchestrator.hashing import source_fingerprint
from tests.test_orchestrator import tiny_sweep


REPRO_ROOT = Path(__file__).parent.parent / "src" / "repro"


class TestSourceFingerprint:
    def test_digests_every_python_file(self, tmp_path):
        """Editing *any* module under src/repro changes the fingerprint."""
        copy = tmp_path / "repro"
        shutil.copytree(REPRO_ROOT, copy, ignore=shutil.ignore_patterns("__pycache__"))
        before = source_fingerprint(root=copy)
        target = copy / "core" / "engine.py"
        target.write_text(target.read_text() + "\n# behavior change\n")
        assert source_fingerprint(root=copy) != before

    def test_new_file_changes_fingerprint(self, tmp_path):
        copy = tmp_path / "repro"
        shutil.copytree(REPRO_ROOT, copy, ignore=shutil.ignore_patterns("__pycache__"))
        before = source_fingerprint(root=copy)
        (copy / "sim" / "new_scheduler.py").write_text("WIP = True\n")
        assert source_fingerprint(root=copy) != before

    def test_default_matches_live_tree(self):
        assert source_fingerprint() == source_fingerprint(root=REPRO_ROOT)

    def test_sweep_keys_fold_in_the_fingerprint(self, monkeypatch):
        point = tiny_sweep().expand()[0]
        key_now = point.key
        assert len(key_now) == 20
        # Simulate a source edit: the same sweep point must change keys,
        # so stale cache files stop matching without manual deletion.
        import repro.orchestrator.sweep as sweep_mod

        monkeypatch.setattr(
            sweep_mod, "source_fingerprint", lambda: "0123456789abcdef"
        )
        assert point.key != key_now


class TestResultCacheStamp:
    def test_entries_written_by_other_code_miss(self, tmp_path):
        sweep = tiny_sweep()
        cache = ResultCache(tmp_path / "c")
        run_sweep(sweep, workers=1, cache=cache)
        # Same directory read back by a cache carrying a different
        # fingerprint (i.e. the simulator source changed): all misses.
        stale = ResultCache(tmp_path / "c", fingerprint="deadbeefdeadbeef")
        for point in sweep.expand():
            assert stale.get(point.key) is None
        assert stale.hits == 0
        # The genuine fingerprint still hits.
        fresh = ResultCache(tmp_path / "c")
        assert all(fresh.get(p.key) is not None for p in sweep.expand())

    def test_unstamped_legacy_entries_miss(self, tmp_path):
        sweep = tiny_sweep()
        cache = ResultCache(tmp_path / "c")
        run_sweep(sweep, workers=1, cache=cache)
        point = sweep.expand()[0]
        path = cache.path_for(point.key)
        body = json.loads(path.read_text())
        del body["code"]  # what a pre-stamp cache entry looks like
        path.write_text(json.dumps(body))
        assert ResultCache(tmp_path / "c").get(point.key) is None

    def test_stamped_rerun_replays(self, tmp_path):
        sweep = tiny_sweep()
        cold = run_sweep(sweep, workers=1, cache=tmp_path / "c")
        warm = run_sweep(sweep, workers=1, cache=tmp_path / "c")
        assert cold.cache_misses == len(cold)
        assert warm.cache_hits == len(warm)
