"""The behavioural chip: HiRA physics, vendor behaviour, protocol rules."""

import numpy as np
import pytest

from repro.dram.commands import Command, CommandKind
from repro.dram.errors import DramError, TimingViolation
from repro.softmc.host import SoftMCHost
from repro.softmc.patterns import DataPattern

from tests.conftest import isolated_pair, non_isolated_pair


def flips(host, pattern, bank, row):
    return host.compare_data(pattern, bank, row)


class TestBasicProtocol:
    def test_write_then_read_roundtrip(self, host):
        host.initialize(0, 17, DataPattern.CHECKERBOARD)
        data = host.read_row(0, 17)
        assert np.all(data == 0xAA)

    def test_uninitialized_rows_read_zero(self, host):
        assert np.all(host.read_row(0, 40) == 0)

    def test_commands_must_be_time_ordered(self, chip):
        chip.issue(Command(kind=CommandKind.ACT, time_ps=10_000, bank=0, row=1))
        with pytest.raises(TimingViolation):
            chip.issue(Command(kind=CommandKind.ACT, time_ps=5_000, bank=1, row=1))

    def test_read_without_open_row_rejected(self, chip):
        with pytest.raises(DramError):
            chip.issue(Command(kind=CommandKind.RD, time_ps=1_000, bank=0, col=0))

    def test_read_before_trcd_rejected(self, chip):
        chip.issue(Command(kind=CommandKind.ACT, time_ps=0, bank=0, row=1))
        with pytest.raises(TimingViolation):
            chip.issue(Command(kind=CommandKind.RD, time_ps=5_000, bank=0, col=0))

    def test_act_to_open_bank_ignored(self, chip):
        chip.issue(Command(kind=CommandKind.ACT, time_ps=0, bank=0, row=1))
        chip.issue(Command(kind=CommandKind.ACT, time_ps=50_000, bank=0, row=2))
        assert chip.stats.ignored_act == 1


class TestHiraSuccess:
    def test_isolated_pair_no_corruption(self, chip, host):
        row_a, row_b = isolated_pair(chip)
        for pattern in (DataPattern.ALL_ONES, DataPattern.CHECKERBOARD):
            host.initialize(0, row_a, pattern)
            host.initialize(0, row_b, pattern.inverse)
            host.hira(0, row_a, row_b)
            assert flips(host, pattern, 0, row_a) == 0
            assert flips(host, pattern.inverse, 0, row_b) == 0

    def test_two_rows_open_after_hira(self, chip, host):
        row_a, row_b = isolated_pair(chip)
        host.initialize(0, row_a, DataPattern.ALL_ONES)
        host.initialize(0, row_b, DataPattern.ALL_ZEROS)
        host.hira(0, row_a, row_b, close=False)
        assert chip.open_row_count(0) == 2

    def test_one_pre_closes_both_rows(self, chip, host):
        """Paper footnote 1: a single PRE closes all wordlines."""
        row_a, row_b = isolated_pair(chip)
        host.initialize(0, row_a, DataPattern.ALL_ONES)
        host.initialize(0, row_b, DataPattern.ALL_ZEROS)
        host.hira(0, row_a, row_b, close=True)
        host.advance(100_000)
        assert chip.open_row_count(0) == 0

    def test_bank_io_owned_by_second_row(self, chip, host):
        row_a, row_b = isolated_pair(chip)
        host.initialize(0, row_a, DataPattern.ALL_ONES)
        host.initialize(0, row_b, DataPattern.ALL_ZEROS)
        host.hira(0, row_a, row_b, close=False)
        open_row, data = chip.read_open_row(0)
        assert open_row == row_b
        assert np.all(data == 0x00)

    def test_hira_success_counted(self, chip, host):
        row_a, row_b = isolated_pair(chip)
        host.initialize(0, row_a, DataPattern.ALL_ONES)
        host.initialize(0, row_b, DataPattern.ALL_ZEROS)
        before = chip.stats.hira_successes
        host.hira(0, row_a, row_b)
        assert chip.stats.hira_successes == before + 1


class TestHiraFailureModes:
    def test_non_isolated_pair_corrupts(self, chip, host):
        row_a, row_b = non_isolated_pair(chip)
        host.initialize(0, row_a, DataPattern.ALL_ONES)
        host.initialize(0, row_b, DataPattern.ALL_ZEROS)
        host.hira(0, row_a, row_b)
        total = flips(host, DataPattern.ALL_ONES, 0, row_a) + flips(
            host, DataPattern.ALL_ZEROS, 0, row_b
        )
        assert total > 0

    def test_same_subarray_pair_corrupts(self, chip, host):
        row_a = chip.geometry.row_of(4, 10)
        row_b = chip.geometry.row_of(4, 90)
        host.initialize(0, row_a, DataPattern.ALL_ONES)
        host.initialize(0, row_b, DataPattern.ALL_ZEROS)
        host.hira(0, row_a, row_b)
        total = flips(host, DataPattern.ALL_ONES, 0, row_a) + flips(
            host, DataPattern.ALL_ZEROS, 0, row_b
        )
        assert total > 0

    def test_t1_too_small_corrupts_first_row(self, chip, host):
        row_a, row_b = isolated_pair(chip)
        # Find a row whose sense amps need more than 1.5 ns.
        timing = chip.variation.row_timing(0, chip.design.logical_to_physical(row_a))
        host.initialize(0, row_a, DataPattern.ALL_ONES)
        host.initialize(0, row_b, DataPattern.ALL_ZEROS)
        host.hira(0, row_a, row_b, t1_ps=1_500)
        if timing.sa_enable_ps > 1_500:
            assert flips(host, DataPattern.ALL_ONES, 0, row_a) > 0
        else:
            assert flips(host, DataPattern.ALL_ONES, 0, row_a) == 0

    def test_nominal_sequences_never_corrupt(self, chip, host):
        """Legal JEDEC timing preserves data for any row pair order."""
        rows = [3, 700, 1_500]
        for row in rows:
            host.initialize(0, row, DataPattern.INV_CHECKERBOARD)
        for row in rows:
            host.activate_refresh(0, row)
        for row in rows:
            assert flips(host, DataPattern.INV_CHECKERBOARD, 0, row) == 0


class TestVendorBehaviour:
    def test_samsung_like_ignores_early_pre(self, samsung_chip):
        host = SoftMCHost(samsung_chip)
        row_a, row_b = isolated_pair(samsung_chip)
        host.initialize(0, row_a, DataPattern.ALL_ONES)
        host.initialize(0, row_b, DataPattern.ALL_ZEROS)
        host.hira(0, row_a, row_b)
        assert samsung_chip.stats.ignored_pre >= 1
        # No corruption, but also no HiRA success.
        assert samsung_chip.stats.hira_successes == 0
        assert host.compare_data(DataPattern.ALL_ONES, 0, row_a) == 0
        assert host.compare_data(DataPattern.ALL_ZEROS, 0, row_b) == 0

    def test_micron_like_ignores_fast_act(self, micron_chip):
        host = SoftMCHost(micron_chip)
        row_a, row_b = isolated_pair(micron_chip)
        host.initialize(0, row_a, DataPattern.ALL_ONES)
        host.initialize(0, row_b, DataPattern.ALL_ZEROS)
        host.hira(0, row_a, row_b)
        assert micron_chip.stats.ignored_act >= 1
        assert micron_chip.stats.hira_successes == 0
        assert host.compare_data(DataPattern.ALL_ONES, 0, row_a) == 0
        assert host.compare_data(DataPattern.ALL_ZEROS, 0, row_b) == 0


class TestRefreshAndHammer:
    def test_ref_command_advances_pointer(self, chip):
        chip.issue(Command(kind=CommandKind.REF, time_ps=0))
        assert chip.stats.refs == 1

    def test_bulk_hammer_requires_precharged(self, chip, host):
        host.initialize(0, 5, DataPattern.ALL_ONES)
        prog = host.program().act(0, 5, wait_ps=chip.timing.tras)
        host.run(prog)
        with pytest.raises(DramError):
            chip.bulk_hammer(0, [6], 100)

    def test_hammering_flips_victim_eventually(self, chip, host):
        victim = chip.geometry.row_of(2, 20)
        aggressors = chip.design.aggressors_for_victim(victim)
        assert len(aggressors) == 2
        host.initialize(0, victim, DataPattern.ALL_ONES)
        for aggr in aggressors:
            host.initialize(0, aggr, DataPattern.ALL_ZEROS)
        host.hammer(0, aggressors, 300_000)
        assert host.compare_data(DataPattern.ALL_ONES, 0, victim) > 0

    def test_refresh_between_hammers_protects(self, chip, host):
        victim = chip.geometry.row_of(2, 40)
        aggressors = chip.design.aggressors_for_victim(victim)
        phys = chip.design.logical_to_physical(victim)
        nrh = chip.variation.row_timing(0, phys).nrh
        half = int(nrh * 0.35)  # below threshold per half, above in total
        host.initialize(0, victim, DataPattern.ALL_ONES)
        for aggr in aggressors:
            host.initialize(0, aggr, DataPattern.ALL_ZEROS)
        host.hammer(0, aggressors, half)
        host.activate_refresh(0, victim)
        host.hammer(0, aggressors, half)
        assert host.compare_data(DataPattern.ALL_ONES, 0, victim) == 0
