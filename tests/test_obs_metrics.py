"""Metrics registry + stats export tables + kernel phase profiler.

The load-bearing invariants: the field→metric tables cover the stats
dataclasses exactly (the ``stats-coverage`` lint rule checks the same
statically; here the runtime guard is exercised), registry snapshots are
deterministic, and the profiler always restores what it patched so
profiled and unprofiled runs can share a process.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.chip.chip_model import ChipStats
from repro.obs.metrics import (
    CHIP_METRICS,
    CONTROLLER_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_from_result,
    record_chip_stats,
    record_controller_stats,
)
from repro.sim.controller import ControllerStats


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------
def test_counter_labels_and_total():
    c = Counter("jobs", "")
    c.inc(state="queued")
    c.inc(2, state="queued")
    c.inc(state="done")
    assert c.value(state="queued") == 3
    assert c.value(state="done") == 1
    assert c.value(state="nope") == 0
    assert c.total() == 4
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_set_and_clear():
    g = Gauge("age", "")
    g.set(1.5, worker="a")
    g.inc(0.5, worker="a")
    assert g.value(worker="a") == 2.0
    g.clear(worker="a")
    assert "worker=a" not in g.snapshot()["values"]
    assert g.value(worker="a") == 0


def test_histogram_buckets():
    h = Histogram("depth", "", buckets=(1, 2, 4))
    for v in (0, 1, 3, 100):
        h.observe(v)
    snap = h.snapshot()
    assert snap["buckets"] == [1, 2, 4]
    cell = snap["values"][""]
    assert cell["total"] == 4
    assert cell["sum"] == 104
    # 0 and 1 land in le-1; 3 in le-4; 100 exceeds every bound and is
    # counted only in sum/total.
    assert cell["counts"] == [2, 0, 1]
    with pytest.raises(ValueError):
        Histogram("bad", "", buckets=(4, 2))


def test_registry_idempotent_and_kind_checked():
    reg = MetricsRegistry()
    first = reg.counter("x", "help")
    assert reg.counter("x") is first
    with pytest.raises(ValueError):
        reg.gauge("x")
    assert "x" in reg
    assert reg.names() == ["x"]
    assert list(reg.snapshot()) == ["x"]


# ----------------------------------------------------------------------
# Stats export tables (the runtime side of the stats-coverage lint rule)
# ----------------------------------------------------------------------
def _field_names(cls) -> set[str]:
    return {f.name for f in dataclasses.fields(cls)}


def test_controller_table_matches_dataclass_exactly():
    assert set(CONTROLLER_METRICS) == _field_names(ControllerStats)


def test_chip_table_matches_dataclass_exactly():
    assert set(CHIP_METRICS) == _field_names(ChipStats)


def test_record_controller_stats_round_trip():
    reg = MetricsRegistry()
    stats = ControllerStats(reads_served=7, acts=3)
    record_controller_stats(reg, stats, channel=0)
    assert reg.get("sim_reads_served_total").value(channel="0") == 7
    assert reg.get("sim_acts_total").value(channel="0") == 3
    # Every table metric exists after one recording.
    for metric_name, __ in CONTROLLER_METRICS.values():
        assert metric_name in reg


def test_record_chip_stats_round_trip():
    reg = MetricsRegistry()
    record_chip_stats(reg, ChipStats(acts=5, refs=2), module="C0")
    assert reg.get("chip_acts_total").value(module="C0") == 5
    assert reg.get("chip_refs_total").value(module="C0") == 2


def test_metrics_from_result_folds_channels():
    from repro.sim.config import SystemConfig
    from repro.sim.system import System
    from repro.workloads.mixes import mix_for

    config = SystemConfig(refresh_mode="baseline", channels=2)
    result = System(
        config, mix_for(0, cores=config.cores), seed=3, instr_budget=2_000
    ).run()
    reg = metrics_from_result(result)
    reads = reg.get("sim_reads_served_total")
    assert reads.total() == result.stat_total("reads_served")
    assert reads.total() == sum(
        reads.value(channel=str(ch)) for ch in range(2)
    )


def test_stale_stats_field_raises():
    reg = MetricsRegistry()

    @dataclasses.dataclass
    class Grown(ControllerStats):
        brand_new_counter: int = 0

    with pytest.raises(KeyError, match="brand_new_counter"):
        record_controller_stats(reg, Grown(), channel=0)


# ----------------------------------------------------------------------
# Phase profiler
# ----------------------------------------------------------------------
def test_profiler_report_shape_and_restoration():
    from repro.obs.profiler import PHASES, profile_workload
    from repro.sim.controller import MemoryController

    before = MemoryController.schedule
    report = profile_workload(dict(refresh_mode="hira", tref_slack_acts=2),
                              instr_budget=2_000)
    # Everything patched was restored.
    assert MemoryController.schedule is before
    assert not hasattr(MemoryController.schedule, "__profiled_phase__")
    assert set(report["phases"]) == set(PHASES)
    assert report["wall_s"] > 0
    assert report["phases"]["schedule"]["calls"] > 0
    assert report["phases"]["refresh-engine"]["calls"] > 0
    tracked = sum(p["seconds"] for p in report["phases"].values())
    assert report["other_s"] == pytest.approx(
        max(0.0, report["wall_s"] - tracked), abs=0.01
    )


def test_profiler_is_observation_only():
    import json as _json

    from repro.obs.profiler import PhaseProfiler
    from repro.orchestrator import result_to_dict
    from repro.sim.config import SystemConfig
    from repro.sim.system import System
    from repro.workloads.mixes import mix_for

    def run(profiled: bool):
        config = SystemConfig(refresh_mode="baseline")
        system = System(config, mix_for(0), seed=9, instr_budget=2_000)
        if profiled:
            with PhaseProfiler():
                return system.run()
        return system.run()

    assert _json.dumps(result_to_dict(run(True)), sort_keys=True) == _json.dumps(
        result_to_dict(run(False)), sort_keys=True
    )


def test_profile_kernel_aggregates(monkeypatch):
    import repro.perf as perf

    monkeypatch.setattr(
        perf, "KERNEL_WORKLOADS",
        (("tiny", dict(refresh_mode="baseline")),),
    )
    out = perf.profile_kernel(instr_budget=1_000)
    assert set(out["workloads"]) == {"tiny"}
    assert out["wall_s"] > 0
    assert set(out["phases"])  # aggregated across workloads


def test_measure_workload_guards_degenerate_walls(monkeypatch):
    """A near-zero timed window (broken/too-coarse clock) must report
    0.0 rates — failing any CI floor loudly — never inf/absurd ones,
    and must drop the speedup-vs-pre-opt column rather than fake it."""
    import repro.perf as perf

    monkeypatch.setattr(perf.time, "perf_counter", lambda: 1.0)
    row = perf.measure_workload(
        "fig12-para-nrh64",
        dict(refresh_mode="baseline", para_nrh=64.0),
        instr_budget=perf.PRE_PR_INSTR_BUDGET // 100,
        reps=1,
    )
    assert row["wall_s"] == 0.0
    assert row["events"] > 0
    assert row["events_per_sec"] == 0.0
    assert row["cycles_per_sec"] == 0.0
    assert row["instr_per_sec"] == 0.0
    assert "speedup_vs_pre_pr" not in row
