"""The optimized event kernel is bit-identical to the recorded goldens.

``tests/goldens/kernel_ab.json`` holds full ``result_to_dict`` dumps
produced by the *pre-optimization* kernel (PR 2, commit 837d658) across
baseline/elastic/HiRA/PARA configurations, channel and rank variants.
The incremental-next-event rewrite (cached core wake times, memoized
``next_event``, O(1) queue predicates, vectorized trace generation) is a
pure performance change: every field — cycles, per-core IPCs, controller
stats — must survive it exactly.

If a future PR changes scheduler *behavior* on purpose, regenerate the
goldens (run this file with ``REPRO_REGEN_GOLDENS=1``) in the same
commit and say so in its message; a silent diff here is a regression.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.orchestrator import result_to_dict
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads.mixes import mix_for

GOLDEN_PATH = Path(__file__).parent / "goldens" / "kernel_ab.json"
GOLDENS = json.loads(GOLDEN_PATH.read_text())


def run_entry(entry: dict):
    config = SystemConfig(**entry["config"])
    profiles = mix_for(entry["mix_id"], cores=config.cores)
    system = System(
        config, profiles, seed=entry["seed"], instr_budget=entry["instr_budget"]
    )
    return system.run()


@pytest.mark.parametrize("name", sorted(GOLDENS))
def test_kernel_matches_pre_optimization_golden(name):
    entry = GOLDENS[name]
    result = result_to_dict(run_entry(entry))
    if os.environ.get("REPRO_REGEN_GOLDENS") == "1":  # pragma: no cover
        GOLDENS[name]["result"] = result
        GOLDEN_PATH.write_text(json.dumps(GOLDENS, indent=1, sort_keys=True))
        return
    golden = entry["result"]
    # Compare piecewise first so a mismatch names the field, then fully.
    for field in golden:
        assert result[field] == golden[field], f"{name}: {field} diverged"
    assert result == golden


def test_goldens_cover_every_engine():
    modes = {entry["config"].get("refresh_mode") for entry in GOLDENS.values()}
    assert modes >= {"none", "baseline", "elastic", "hira"}
    assert any(entry["config"].get("para_nrh") for entry in GOLDENS.values())
    assert any(entry["config"].get("channels", 1) > 1 for entry in GOLDENS.values())
    assert any(
        entry["config"].get("ranks_per_channel", 1) > 1 for entry in GOLDENS.values()
    )
