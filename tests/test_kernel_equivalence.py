"""The optimized event kernel is bit-identical to the recorded goldens.

``tests/goldens/kernel_ab.json`` holds full ``result_to_dict`` dumps
across baseline/elastic/HiRA/PARA configurations, channel and rank
variants.  Refactors of the event kernel (cached core wake times,
memoized ``next_event``, O(1) queue predicates, vectorized trace
generation) are pure performance changes: every field — cycles, per-core
IPCs, controller stats — must survive them exactly.

If a future PR changes scheduler *behavior* on purpose, regenerate the
goldens (run this file with ``REPRO_REGEN_GOLDENS=1``) in the same
commit and say so in its message; a silent diff here is a regression.

Entries carrying a ``pinned`` field are *never* regenerated: the
``-zeroturn`` entries permanently hold the PR 4 kernel's results (commit
cb6b0c8, before tRTW/tWTR bus-turnaround gating and DDR5 same-bank
refresh existed) and run with ``trtw = twtr = 0`` timing overrides and
``refresh_granularity="all_bank"`` — proving that zero turnaround plus
all-bank refresh reproduces the pre-turnaround kernel bit-identically,
for every recorded engine/channel/rank/PARA configuration.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from dataclasses import replace
from pathlib import Path

import pytest

from repro.orchestrator import result_to_dict
from repro.sim.audit import attach_auditors
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads.mixes import mix_for

GOLDEN_PATH = Path(__file__).parent / "goldens" / "kernel_ab.json"
GOLDENS = json.loads(GOLDEN_PATH.read_text())

AUDIT_GOLDEN_PATH = Path(__file__).parent / "goldens" / "kernel_audit_digests.json"
AUDIT_GOLDENS = (
    json.loads(AUDIT_GOLDEN_PATH.read_text()) if AUDIT_GOLDEN_PATH.exists() else {}
)


def run_entry(entry: dict):
    config_data = dict(entry["config"])
    # Optional partial TimingParams override (e.g. {"trtw": 0, "twtr": 0}),
    # applied on top of the capacity-derived preset.
    timing_overrides = config_data.pop("timing", None)
    config = SystemConfig(**config_data)
    if timing_overrides:
        config = config.variant(
            timing=replace(config.timing, **timing_overrides)
        )
    profiles = mix_for(entry["mix_id"], cores=config.cores)
    system = System(
        config, profiles, seed=entry["seed"], instr_budget=entry["instr_budget"]
    )
    return system.run()


@pytest.mark.parametrize("name", sorted(GOLDENS))
def test_kernel_matches_golden(name):
    entry = GOLDENS[name]
    result = result_to_dict(run_entry(entry))
    if os.environ.get("REPRO_REGEN_GOLDENS") == "1" and "pinned" not in entry:
        GOLDENS[name]["result"] = result  # pragma: no cover
        GOLDEN_PATH.write_text(json.dumps(GOLDENS, indent=1, sort_keys=True))
        return
    golden = entry["result"]
    # Compare piecewise first so a mismatch names the field, then fully.
    for field in golden:
        assert result[field] == golden[field], f"{name}: {field} diverged"
    assert result == golden


def test_goldens_cover_every_engine():
    modes = {entry["config"].get("refresh_mode") for entry in GOLDENS.values()}
    assert modes >= {"none", "baseline", "elastic", "hira"}
    assert any(entry["config"].get("para_nrh") for entry in GOLDENS.values())
    assert any(entry["config"].get("channels", 1) > 1 for entry in GOLDENS.values())
    assert any(
        entry["config"].get("ranks_per_channel", 1) > 1 for entry in GOLDENS.values()
    )
    # Both refresh granularities are pinned, for every REF-owing engine.
    sb_modes = {
        entry["config"]["refresh_mode"]
        for entry in GOLDENS.values()
        if entry["config"].get("refresh_granularity") == "same_bank"
    }
    assert sb_modes >= {"baseline", "elastic", "hira"}


# ----------------------------------------------------------------------
# SoA A/B sweep: byte-identical audit logs across the full engine matrix.
#
# The kernel_ab goldens compare aggregate results (cycles, IPCs, stats);
# an array-indexing transposition in the struct-of-arrays hot path could
# in principle swap two banks' command streams without moving any
# aggregate.  These goldens pin a sha256 over every controller's full
# exported audit log — command kind, cycle, rank, bank, row, tag, in
# issue order — so the command *stream itself* must survive refactors
# byte for byte.  Seeds are drawn from a fixed generator: randomized
# coverage, deterministic test.
# ----------------------------------------------------------------------
def _audit_grid() -> dict[str, dict]:
    rng = random.Random(0xA0D17)
    grid = {}
    for mode in ("baseline", "elastic", "hira"):
        for granularity in ("all_bank", "same_bank"):
            for turnaround in (True, False):
                seed = rng.randrange(1, 1 << 16)
                name = (
                    f"{mode}-{granularity}-"
                    f"{'turn' if turnaround else 'noturn'}-s{seed}"
                )
                config: dict = {"refresh_mode": mode, "refresh_granularity": granularity}
                if mode == "hira":
                    config["tref_slack_acts"] = 2
                if rng.random() < 0.5:
                    config["para_nrh"] = float(rng.choice((64, 256)))
                if not turnaround:
                    config["timing"] = {"trtw": 0, "twtr": 0}
                grid[name] = {
                    "config": config,
                    "mix_id": rng.randrange(0, 3),
                    "seed": seed,
                    "instr_budget": 3000,
                }
    return grid


AUDIT_GRID = _audit_grid()


def _audit_digest(entry: dict) -> str:
    config_data = dict(entry["config"])
    timing_overrides = config_data.pop("timing", None)
    config = SystemConfig(**config_data)
    if timing_overrides:
        config = config.variant(timing=replace(config.timing, **timing_overrides))
    profiles = mix_for(entry["mix_id"], cores=config.cores)
    system = System(
        config, profiles, seed=entry["seed"], instr_budget=entry["instr_budget"]
    )
    auditors = attach_auditors(system)
    system.run()
    digest = hashlib.sha256()
    for auditor in auditors:
        log = auditor.export_log()
        digest.update(
            json.dumps(log, sort_keys=True, separators=(",", ":")).encode()
        )
    return digest.hexdigest()


@pytest.mark.parametrize("name", sorted(AUDIT_GRID))
def test_audit_log_matches_digest_golden(name):
    entry = AUDIT_GRID[name]
    digest = _audit_digest(entry)
    if os.environ.get("REPRO_REGEN_GOLDENS") == "1":  # pragma: no cover
        AUDIT_GOLDENS[name] = digest
        AUDIT_GOLDEN_PATH.write_text(
            json.dumps(AUDIT_GOLDENS, indent=1, sort_keys=True) + "\n"
        )
        return
    assert name in AUDIT_GOLDENS, (
        f"no audit digest recorded for {name}; regenerate with "
        "REPRO_REGEN_GOLDENS=1"
    )
    assert digest == AUDIT_GOLDENS[name], (
        f"{name}: audit log diverged from the recorded command stream"
    )


def test_audit_grid_covers_matrix():
    combos = {
        (e["config"]["refresh_mode"], e["config"]["refresh_granularity"],
         "timing" in e["config"])
        for e in AUDIT_GRID.values()
    }
    assert len(combos) == 12  # 3 engines x 2 granularities x turnaround on/off


def test_every_entry_has_a_pinned_zero_turnaround_twin():
    """Each live entry is shadowed by a PR 4-pinned zero-turnaround case.

    The twin differs from its sibling only by the ``trtw = twtr = 0``
    timing override (and an explicit all-bank granularity), so the pair
    proves the turnaround/REFsb gating is exactly opt-in: disabling it
    reproduces the pre-turnaround kernel bit for bit.
    """
    live = {
        n
        for n, e in GOLDENS.items()
        if not n.endswith("-zeroturn")
        and e["config"].get("refresh_granularity", "all_bank") == "all_bank"
    }
    assert live, "no live golden entries"
    for name in live:
        twin = GOLDENS.get(name + "-zeroturn")
        assert twin is not None, f"{name} has no -zeroturn twin"
        assert "pinned" in twin, f"{name}-zeroturn must be pinned"
        assert twin["config"]["timing"] == {"trtw": 0, "twtr": 0}
        assert twin["config"]["refresh_granularity"] == "all_bank"
        stripped = {
            k: v
            for k, v in twin["config"].items()
            if k not in ("timing", "refresh_granularity")
        }
        assert stripped == GOLDENS[name]["config"]
