"""Shared fixtures: small chip models and hosts for fast tests."""

from __future__ import annotations

import pytest

from repro.chip.chip_model import DramChip
from repro.chip.design import make_design
from repro.chip.vendor import VendorClass
from repro.dram.timing import DDR4_2400
from repro.softmc.host import SoftMCHost


@pytest.fixture(scope="session")
def small_design():
    """A compact HiRA-capable design: 16 subarrays × 128 rows."""
    return make_design(
        name="test-hynix",
        vendor=VendorClass.HYNIX_LIKE,
        target_coverage=0.32,
        design_seed=7,
        subarrays_per_bank=16,
        rows_per_subarray=128,
    )


@pytest.fixture()
def chip(small_design):
    return DramChip(small_design, timing=DDR4_2400, chip_seed=3)


@pytest.fixture()
def host(chip):
    return SoftMCHost(chip)


@pytest.fixture()
def samsung_chip():
    design = make_design(
        name="test-samsung",
        vendor=VendorClass.SAMSUNG_LIKE,
        subarrays_per_bank=16,
        rows_per_subarray=128,
        design_seed=8,
    )
    return DramChip(design, chip_seed=4)


@pytest.fixture()
def micron_chip():
    design = make_design(
        name="test-micron",
        vendor=VendorClass.MICRON_LIKE,
        subarrays_per_bank=16,
        rows_per_subarray=128,
        design_seed=9,
    )
    return DramChip(design, chip_seed=5)


def isolated_pair(chip: DramChip) -> tuple[int, int]:
    """A (row_a, row_b) pair in isolated subarrays of the chip."""
    iso = chip.isolation
    for sa in range(chip.geometry.subarrays_per_bank):
        partners = iso.partners(sa)
        if partners:
            return (
                chip.geometry.row_of(sa, 5),
                chip.geometry.row_of(partners[0], 9),
            )
    raise RuntimeError("no isolated pair in this design")


def non_isolated_pair(chip: DramChip) -> tuple[int, int]:
    """A (row_a, row_b) pair in non-adjacent, non-isolated subarrays."""
    iso = chip.isolation
    n = chip.geometry.subarrays_per_bank
    for sa in range(n):
        for sb in range(sa + 2, n):
            if not iso.isolated(sa, sb):
                return (
                    chip.geometry.row_of(sa, 5),
                    chip.geometry.row_of(sb, 9),
                )
    raise RuntimeError("no non-isolated pair in this design")
