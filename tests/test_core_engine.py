"""HiRA-MC engine behaviour inside the controller."""

import pytest

from repro.core.engine import HiraRefreshEngine
from repro.dram.geometry import Address
from repro.sim.config import SystemConfig
from repro.sim.controller import MemoryController
from repro.sim.request import Request


def make_hira_mc(**engine_kwargs):
    config = SystemConfig(refresh_mode="hira", capacity_gbit=8.0)
    engine = HiraRefreshEngine(**engine_kwargs)
    mc = MemoryController(0, config, engine)
    engine.para = None
    return mc, engine


def req(row=0, bank=0, col=0):
    return Request(
        addr=Address(bank=bank, row=row, col=col),
        line=0,
        is_write=False,
        core_id=0,
        arrival_cycle=0,
    )


class TestPeriodicGeneration:
    def test_generation_rate_matches_rows_per_window(self):
        mc, engine = make_hira_mc(tref_slack_acts=2)
        horizon = 200_000
        engine._advance_generation(horizon)
        generated = mc.stats.periodic_generated
        config = mc.config
        expected = (
            horizon / config.per_bank_refresh_interval_cycles
        ) * config.geometry.banks_per_rank
        assert generated == pytest.approx(expected, rel=0.02)

    def test_staggering_spreads_offsets(self):
        __, engine = make_hira_mc(stagger=True)
        offsets = sorted(s.next_gen for s in engine._periodic.values())
        assert len({int(o) for o in offsets}) == len(offsets)

    def test_no_stagger_aligns_offsets(self):
        __, engine = make_hira_mc(stagger=False)
        offsets = {s.next_gen for s in engine._periodic.values()}
        assert offsets == {0.0}


class TestRefreshAccessParallelization:
    def test_on_act_rides_pending_refresh(self):
        mc, engine = make_hira_mc(tref_slack_acts=8)
        horizon = int(mc.config.per_bank_refresh_interval_cycles) + 10
        engine._advance_generation(horizon)
        bank0_pending = engine._periodic[(0, 0)].pending
        assert bank0_pending
        row = engine.on_act(req(row=10, bank=0), horizon)
        assert row is not None
        # The chosen refresh row is in a subarray isolated from the demand row.
        sa_demand = engine.spt.subarray_of_row(10)
        sa_refresh = engine.spt.subarray_of_row(row)
        assert engine.spt.isolated(sa_demand, sa_refresh)

    def test_on_act_none_without_pending(self):
        mc, engine = make_hira_mc()
        # Bank 15's staggered first generation lies in the future at cycle 0.
        assert engine.on_act(req(row=10, bank=15), 0) is None

    def test_disable_access_parallelization(self):
        mc, engine = make_hira_mc(
            tref_slack_acts=8, disable_access_parallelization=True
        )
        engine._advance_generation(100_000)
        assert engine.on_act(req(row=10), 100_000) is None


class TestDeadlineEnforcement:
    def test_urgent_refreshes_by_deadline(self):
        mc, engine = make_hira_mc(tref_slack_acts=0)
        deadline_time = int(engine._periodic[(0, 0)].next_gen) + 1
        issued = False
        for cycle in range(deadline_time + mc.trc_c + 50):
            if mc.schedule(cycle):
                issued = True
        assert issued
        assert mc.stats.solo_refreshes + 2 * mc.stats.hira_refresh_parallelized >= 1

    def test_deadlines_met_in_idle_system(self):
        mc, engine = make_hira_mc(tref_slack_acts=2)
        cycle = 0
        limit = int(mc.config.per_bank_refresh_interval_cycles * 3)
        while cycle < limit:
            if not mc.schedule(cycle):
                cycle = max(cycle + 1, mc.next_event(cycle))
            else:
                cycle += 1
        assert mc.stats.deadline_misses == 0
        performed = (
            mc.stats.solo_refreshes + 2 * mc.stats.hira_refresh_parallelized
        )
        assert performed >= mc.stats.periodic_generated - mc.config.geometry.banks_per_rank * 2

    def test_disable_refresh_parallelization_forces_solo(self):
        mc, engine = make_hira_mc(
            tref_slack_acts=0, disable_refresh_parallelization=True
        )
        limit = int(mc.config.per_bank_refresh_interval_cycles * 2)
        cycle = 0
        while cycle < limit:
            if not mc.schedule(cycle):
                cycle = max(cycle + 1, mc.next_event(cycle))
            else:
                cycle += 1
        assert mc.stats.hira_refresh_parallelized == 0
        assert mc.stats.solo_refreshes > 0


class TestPreventivePath:
    def test_para_victims_enter_pr_fifo(self):
        mc, engine = make_hira_mc(tref_slack_acts=4)
        from repro.rowhammer.para import Para
        import numpy as np

        engine.para = Para(pth=1.0, rng=np.random.default_rng(1))
        engine.on_demand_act(req(row=100, bank=3), now=50)
        assert engine.pending_preventive() == 1
        head = engine.pr[0].head(3)
        assert head.row in (99, 101)
        assert head.deadline == 50 + engine.slack_c

    def test_pr_fifo_overflow_falls_back_to_blocking(self):
        mc, engine = make_hira_mc(tref_slack_acts=4, pr_fifo_depth=1)
        from repro.rowhammer.para import Para
        import numpy as np

        engine.para = Para(pth=1.0, rng=np.random.default_rng(1))
        engine.on_demand_act(req(row=100, bank=3), now=50)
        engine.on_demand_act(req(row=100, bank=3), now=51)
        assert len(engine._preventive) == 1  # overflow path
