"""Chaos matrix: every distributed failure mode, reproduced on demand.

Each scenario arms a seeded :class:`~repro.orchestrator.faults.FaultPlan`
against a live localhost job server and asserts the sweep still finishes
**bit-identical to serial execution** — the acceptance bar for the whole
distributed layer.  Faults are matched on frame content (heartbeats share
the socket and interleave nondeterministically), so a fixed fault seed
replays the same failure at the same protocol step every run.

``REPRO_CHAOS_SEED`` selects the fault seed (default 0); CI's
``chaos-matrix`` job runs the suite under two seeds, and
``tools/check_chaos.py`` additionally proves the suite is non-vacuous by
disabling requeue-on-death and requiring a failure.

Everything here must pass on a 1-CPU runner: workers are in-process
threads and sweeps are tiny.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time

import pytest

from repro.orchestrator import (
    NoWorkersRegistered,
    ResultCache,
    SocketBackend,
    SweepJournal,
    journal_path_for,
    plan_sweep,
    result_to_dict,
    run_sweep,
)
from repro.orchestrator.backends.protocol import (
    PROTOCOL_VERSION,
    recv_msg,
    send_msg,
)
from repro.orchestrator.backends.server import JobServer, WorkerPoolError
from repro.orchestrator.backends.worker import run_session, serve
from repro.orchestrator.faults import (
    Backoff,
    FaultEvent,
    FaultPlan,
    InjectedCrash,
    injected,
)
from repro.orchestrator.hashing import source_fingerprint
from repro.orchestrator.sweep import Sweep, Variant, axis, profile_workloads
from repro.sim.trace import TraceProfile

#: CI's chaos-matrix job sweeps this over two seeds; locally it defaults
#: to seed 0 so the tier-1 run stays single-seed.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

#: ``send_msg`` serializes compactly, so frame matching uses the compact
#: spelling (heartbeats never contain these, pinning events to the
#: intended frame regardless of heartbeat interleaving).
RESULT_FRAME = '"type":"result"'
JOB_FRAME = '"type":"job"'


def tiny_sweep(instr: int = 2_500, name: str = "chaos", **kwargs) -> Sweep:
    profiles = [
        TraceProfile(f"t{i}", mpki=18.0, row_locality=0.7) for i in range(8)
    ]
    defaults = dict(
        name=name,
        axes=(
            axis(
                "cfg",
                Variant.make("Baseline", refresh_mode="baseline"),
                Variant.make("HiRA-2", refresh_mode="hira", tref_slack_acts=2),
            ),
        ),
        workloads=profile_workloads(profiles, count=1),
        instr_budget=instr,
        max_cycles=2_000_000,
    )
    defaults.update(kwargs)
    return Sweep(**defaults)


def worker_thread(port: int, **kwargs) -> threading.Thread:
    options = dict(connect_timeout=20.0, max_sessions=1, heartbeat_interval=0.2)
    options.update(kwargs)
    thread = threading.Thread(
        target=serve, args=("127.0.0.1", port), kwargs=options, daemon=True
    )
    thread.start()
    return thread


def dicts(sweep_result) -> list[dict]:
    return [result_to_dict(r) for r in sweep_result.results]


@pytest.fixture(scope="module")
def serial():
    return run_sweep(tiny_sweep(), backend="serial")


def _run_with_plan(plan: FaultPlan, *, workers: int = 1, serial_result=None,
                   **backend_kwargs):
    """One armed sweep against `workers` in-process daemons; returns
    (SweepResult, JobServer telemetry snapshot)."""
    options = dict(port=0, registration_timeout=20.0, heartbeat_timeout=5.0,
                   max_retries=3)
    options.update(backend_kwargs)
    with injected(plan):
        backend = SocketBackend(**options)
        threads = [
            worker_thread(
                backend.port,
                label=f"chaos-w{i}",
                backoff_seed=CHAOS_SEED + i,
                max_sessions=4,
                # Short daemon lifetime: during a live sweep the session
                # itself keeps the deadline fresh, and after the server
                # closes the thread exits (and joins) quickly.
                connect_timeout=4.0,
            )
            for i in range(workers)
        ]
        try:
            result = run_sweep(tiny_sweep(), backend=backend)
        finally:
            server = backend.server
            backend.close()
        for thread in threads:
            thread.join(timeout=15)
    if serial_result is not None:
        assert dicts(result) == dicts(serial_result)
    return result, server


# ----------------------------------------------------------------------
# Transport faults (worker side)
# ----------------------------------------------------------------------
class TestTransportFaults:
    def test_connection_refused_then_backoff_recovers(self, serial):
        plan = FaultPlan(CHAOS_SEED, [
            FaultEvent(action="refuse", role="worker", op="connect",
                       nth=1, times=2),
        ])
        __, server = _run_with_plan(plan, serial_result=serial)
        refusals = [f for f in plan.fired if f[1] == "refuse"]
        assert len(refusals) == 2, plan.fired

    def test_connection_reset_mid_result_requeues(self, serial):
        plan = FaultPlan(CHAOS_SEED, [
            FaultEvent(action="reset", role="worker", op="send",
                       match=RESULT_FRAME, nth=1),
        ])
        _run_with_plan(plan, serial_result=serial)
        assert [f[1] for f in plan.fired] == ["reset"]

    def test_truncated_result_frame_requeues(self, serial):
        plan = FaultPlan(CHAOS_SEED, [
            FaultEvent(action="truncate", role="worker", op="send",
                       match=RESULT_FRAME, nth=1, arg=16),
        ])
        _run_with_plan(plan, serial_result=serial)
        assert [f[1] for f in plan.fired] == ["truncate"]

    def test_corrupted_result_frame_requeues(self, serial):
        plan = FaultPlan(CHAOS_SEED, [
            FaultEvent(action="corrupt", role="worker", op="send",
                       match=RESULT_FRAME, nth=1),
        ])
        _run_with_plan(plan, serial_result=serial)
        assert len(plan.fired) == 1
        assert plan.fired[0][4].startswith("flipped="), plan.fired

    def test_delayed_frames_only_slow_the_sweep(self, serial):
        plan = FaultPlan(CHAOS_SEED, [
            FaultEvent(action="delay", role="worker", op="send",
                       match=RESULT_FRAME, nth=1, times=2, arg=0.1),
        ])
        _run_with_plan(plan, serial_result=serial)
        assert [f[1] for f in plan.fired] == ["delay", "delay"]

    def test_truncated_job_frame_from_server_requeues(self, serial):
        # The server's own send path is also under the fault layer: a job
        # frame torn mid-send must requeue on the server and resync the
        # worker via reconnect.
        plan = FaultPlan(CHAOS_SEED, [
            FaultEvent(action="truncate", role="server", op="send",
                       match=JOB_FRAME, nth=1, arg=8),
        ])
        _run_with_plan(plan, serial_result=serial)
        assert [f[1] for f in plan.fired] == ["truncate"]


# ----------------------------------------------------------------------
# Crashes, stragglers, quarantine
# ----------------------------------------------------------------------
class TestCrashAndStragglers:
    def test_worker_crash_mid_job_is_absorbed(self, serial):
        # InjectedCrash is not an OSError: it kills the daemon thread the
        # way SIGKILL would kill the process.  The surviving worker picks
        # up the requeued job.
        plan = FaultPlan(CHAOS_SEED, [
            FaultEvent(action="crash", role="worker", op="send",
                       match=RESULT_FRAME, nth=1),
        ])
        old_hook = threading.excepthook

        def hook(args):
            if not issubclass(args.exc_type, InjectedCrash):
                old_hook(args)

        threading.excepthook = hook
        try:
            _run_with_plan(plan, workers=2, serial_result=serial)
        finally:
            threading.excepthook = old_hook
        assert [f[1] for f in plan.fired] == ["crash"]

    def test_straggler_is_speculatively_redispatched(self, serial):
        # One worker stalls 4s inside its first result send while the job
        # deadline is 0.8s: the server must speculate a second copy, take
        # the fast worker's result, and drop the straggler's duplicate.
        plan = FaultPlan(CHAOS_SEED, [
            FaultEvent(action="stall", role="worker", op="send",
                       match=RESULT_FRAME, nth=1, arg=4.0),
        ])
        __, server = _run_with_plan(
            plan, workers=2, serial_result=serial,
            job_deadline=0.8, heartbeat_timeout=15.0,
        )
        assert server.speculated >= 1
        assert [f[1] for f in plan.fired] == ["stall"]

    def test_flapping_worker_is_quarantined(self, serial):
        # A scripted worker that takes a job and dies, twice in a row,
        # must trip the circuit breaker (threshold 2) so the healthy
        # worker finishes without burning every retry on the flapper.
        sweep = tiny_sweep()
        server = JobServer(
            port=0, registration_timeout=20.0, heartbeat_timeout=5.0,
            max_retries=5, quarantine_threshold=2, quarantine_window=30.0,
            quarantine_cooldown=30.0, seed=CHAOS_SEED,
        )
        flapped = threading.Event()

        def flapper():
            for __ in range(2):
                sock = socket.create_connection(
                    ("127.0.0.1", server.port), timeout=10.0)
                send_msg(sock, {
                    "type": "hello", "worker": "chaos-flapper", "pid": 0,
                    "fingerprint": source_fingerprint(),
                    "protocol": PROTOCOL_VERSION,
                })
                assert recv_msg(sock).get("type") == "welcome"
                job = recv_msg(sock)
                assert job.get("type") == "job"
                sock.close()
            flapped.set()

        threading.Thread(target=flapper, daemon=True).start()
        box = {}

        def run():
            try:
                box["results"] = server.serve(
                    list(enumerate(sweep.expand())))
            except WorkerPoolError as exc:  # pragma: no cover - diagnostic
                box["error"] = exc

        runner = threading.Thread(target=run, daemon=True)
        runner.start()
        assert flapped.wait(timeout=20), "flapper never got two jobs"
        healthy = worker_thread(server.port, label="chaos-healthy",
                                connect_timeout=4.0)
        runner.join(timeout=60)
        server.close()
        healthy.join(timeout=15)
        assert not runner.is_alive(), "sweep hung behind the flapper"
        assert "error" not in box, box.get("error")
        assert server.quarantined_total >= 1
        ordered = [r for index, r in sorted(box["results"], key=lambda p: p[0])]
        assert [result_to_dict(r) for r in ordered] == dicts(serial)


# ----------------------------------------------------------------------
# Crash-safe journal + resume
# ----------------------------------------------------------------------
class TestCrashSafetyAndResume:
    def test_interrupted_sweep_keeps_results_and_resumes(self, tmp_path, serial):
        # Phase 1: the only worker crashes on its second result with no
        # retries left -> the sweep dies *after* one result was streamed,
        # cached, and journaled.  Phase 2: --resume semantics (plan +
        # journal) recompute only the missing point.
        sweep = tiny_sweep()
        cache = ResultCache(tmp_path / "store")
        jpath = journal_path_for(cache.root, sweep.name)
        plan = FaultPlan(CHAOS_SEED, [
            FaultEvent(action="crash", role="worker", op="send",
                       match=RESULT_FRAME, nth=2),
        ])
        old_hook = threading.excepthook

        def hook(args):
            if not issubclass(args.exc_type, InjectedCrash):
                old_hook(args)

        threading.excepthook = hook
        try:
            with injected(plan):
                backend = SocketBackend(
                    port=0, registration_timeout=2.0, heartbeat_timeout=5.0,
                    max_retries=0, strict=True,
                )
                worker_thread(backend.port, label="chaos-doomed")
                with pytest.raises(WorkerPoolError):
                    run_sweep(sweep, cache=cache, backend=backend,
                              journal=jpath)
                backend.close()
        finally:
            threading.excepthook = old_hook

        state = SweepJournal.load(jpath)
        assert state.runs == 1 and not state.complete
        assert state.done == 1
        assert len(cache) == 1  # the streamed result survived the crash

        resumed_plan = plan_sweep(sweep, cache)
        assert resumed_plan.reused == 1 and resumed_plan.computed == 1
        result = run_sweep(sweep, cache=cache, backend="serial",
                           plan=resumed_plan, journal=jpath)
        assert dicts(result) == dicts(serial)
        state = SweepJournal.load(jpath)
        assert state.runs == 2 and state.complete
        assert state.done == 2

    def test_journal_round_trip_and_torn_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SweepJournal(path) as journal:
            journal.begin("s", 3, "fp", reused=1)
            journal.record_done(0, "k0")
            journal.record_done(2, "k2")
        state = SweepJournal.load(path)
        assert state.runs == 1 and not state.complete
        assert state.done_keys == {"k0", "k2"} and state.points == 3
        assert state.fingerprint == "fp" and not state.torn_tail
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "done", "index": 1, "key"')  # torn
        state = SweepJournal.load(path)
        assert state.torn_tail and state.done_keys == {"k0", "k2"}
        assert "interrupted" in state.describe()

    def test_journal_path_sanitizes_sweep_names(self, tmp_path):
        path = journal_path_for(tmp_path, "fig 12/same-bank")
        assert path.parent == tmp_path / "journals"
        assert path.name == "fig_12_same-bank.jsonl"

    def test_kill_during_cache_put_leaves_no_torn_entry(
            self, tmp_path, serial, monkeypatch):
        import repro.orchestrator.atomicio as atomicio

        cache = ResultCache(tmp_path / "store")
        victim = serial.results[0]
        cache.put("aa11", victim)
        assert len(cache) == 1

        real_replace = atomicio.os.replace

        def killed(src, dst):
            raise RuntimeError("injected: killed mid-write")

        monkeypatch.setattr(atomicio.os, "replace", killed)
        with pytest.raises(RuntimeError, match="killed mid-write"):
            cache.put("bb22", victim)
        # Overwrite of an existing key dies the same way...
        with pytest.raises(RuntimeError, match="killed mid-write"):
            cache.put("aa11", victim)
        monkeypatch.setattr(atomicio.os, "replace", real_replace)

        # ...yet no torn entry exists: the new key reads as a clean miss,
        # the old key still round-trips, and the store heals on retry.
        assert len(cache) == 1
        assert cache.get("bb22") is None
        assert result_to_dict(cache.get("aa11")) == result_to_dict(victim)
        cache.put("bb22", victim)
        assert result_to_dict(cache.get("bb22")) == result_to_dict(victim)
        assert len(cache) == 2


# ----------------------------------------------------------------------
# Degradation + registration hardening
# ----------------------------------------------------------------------
class TestDegradation:
    def test_zero_workers_degrades_to_local_pool(self, serial, capsys):
        backend = SocketBackend(port=0, registration_timeout=0.5,
                                fallback_workers=1)
        try:
            result = run_sweep(tiny_sweep(), backend=backend)
        finally:
            backend.close()
        assert backend.degraded
        assert result.backend == "socket+local-fallback"
        assert dicts(result) == dicts(serial)
        assert "--strict-backend" in capsys.readouterr().err

    def test_zero_workers_strict_raises(self):
        backend = SocketBackend(port=0, registration_timeout=0.5, strict=True)
        try:
            with pytest.raises(NoWorkersRegistered, match="no worker registered"):
                run_sweep(tiny_sweep(), backend=backend)
        finally:
            backend.close()
        assert not backend.degraded

    def test_welcomeless_server_does_not_strand_run_session(self):
        ours, theirs = socket.socketpair()
        try:
            start = time.monotonic()
            assert run_session(ours, welcome_timeout=0.3) is None
            assert time.monotonic() - start < 5.0
        finally:
            ours.close()
            theirs.close()

    def test_welcomeless_server_does_not_strand_the_daemon(self):
        # A listener that accepts TCP connections but never speaks the
        # protocol: the daemon must give up after connect_timeout instead
        # of looping phantom sessions forever.
        listener = socket.create_server(("127.0.0.1", 0))
        accepted = []

        def mute_accept():
            while True:
                try:
                    conn, __ = listener.accept()
                except OSError:
                    return
                accepted.append(conn)  # hold it open, say nothing

        threading.Thread(target=mute_accept, daemon=True).start()
        port = listener.getsockname()[1]
        start = time.monotonic()
        total = serve("127.0.0.1", port, connect_timeout=1.5,
                      welcome_timeout=0.2, max_sessions=1)
        elapsed = time.monotonic() - start
        listener.close()
        for conn in accepted:
            conn.close()
        assert total == 0
        assert elapsed < 15.0, f"daemon stranded for {elapsed:.1f}s"


# ----------------------------------------------------------------------
# Determinism of the harness itself
# ----------------------------------------------------------------------
class TestHarnessDeterminism:
    def test_same_seed_fires_identically(self, serial):
        logs = []
        for __ in range(2):
            plan = FaultPlan(CHAOS_SEED, [
                FaultEvent(action="corrupt", role="worker", op="send",
                           match=RESULT_FRAME, nth=1),
                FaultEvent(action="reset", role="worker", op="send",
                           match=RESULT_FRAME, nth=3),
            ])
            _run_with_plan(plan, serial_result=serial)
            logs.append(list(plan.fired))
        assert logs[0] == logs[1]
        assert [f[1] for f in logs[0]] == ["corrupt", "reset"]

    def test_decide_windows_and_matching(self):
        plan = FaultPlan(7, [
            FaultEvent(action="delay", role="worker", op="send",
                       match="result", nth=2, times=2),
            FaultEvent(action="reset", role="server", op="recv"),
        ])
        # Non-matching role/op/content never tick the counter.
        assert plan.decide("worker", "send", b"heartbeat") is None
        assert plan.decide("server", "send", b"result") is None
        # 1st match: before the window.  2nd + 3rd: inside.  4th: after.
        assert plan.decide("worker", "send", b"a result frame") is None
        assert plan.decide("worker", "send", b"a result frame").action == "delay"
        assert plan.decide("worker", "send", b"a result frame").action == "delay"
        assert plan.decide("worker", "send", b"a result frame") is None
        assert plan.decide("server", "recv").action == "reset"
        assert [f[1] for f in plan.fired] == ["delay", "delay", "reset"]

    def test_corruption_is_seeded_and_header_safe(self):
        frame = b"\x00\x00\x00\x20" + json.dumps(
            {"type": "result", "id": 1}).encode("utf-8")
        one = FaultPlan(3).corruption(frame)
        two = FaultPlan(3).corruption(frame)
        other = FaultPlan(4).corruption(frame)
        assert one == two
        assert one != frame
        assert one[:4] == frame[:4]  # header must stay intact
        assert one != other or len(frame) <= 5

    def test_backoff_schedule(self):
        backoff = Backoff(base=0.1, cap=1.0, factor=2.0, seed=5)
        delays = [backoff.next() for __ in range(6)]
        for i, delay in enumerate(delays):
            nominal = min(1.0, 0.1 * 2.0 ** i)
            assert 0.5 * nominal <= delay < 1.5 * nominal
        again = Backoff(base=0.1, cap=1.0, factor=2.0, seed=5)
        assert [again.next() for __ in range(6)] == delays
        backoff.reset()
        assert backoff.attempt == 0
        assert backoff.next() < 0.15  # back to the base rung

    def test_backoff_rejects_bad_params(self):
        with pytest.raises(ValueError):
            Backoff(base=0.0)
        with pytest.raises(ValueError):
            Backoff(base=1.0, cap=0.5)
        with pytest.raises(ValueError):
            Backoff(factor=0.9)
