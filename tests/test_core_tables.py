"""HiRA-MC storage structures: Refresh Table, RefPtr, PR-FIFO, SPT."""

import pytest

from repro.core.hira_op import HiraOperation, RefreshKind, access_after_refresh_latency_ps, refresh_pair_savings
from repro.core.pr_fifo import PreventiveRequest, PrFifo
from repro.core.refresh_table import RefreshTable, RefreshTableEntry
from repro.core.refptr_table import RefPtrTable
from repro.core.spt import SubarrayPairsTable
from repro.dram.geometry import Geometry


class TestRefreshTable:
    def test_orders_by_deadline(self):
        table = RefreshTable()
        table.insert(RefreshTableEntry(deadline=50, bank=1))
        table.insert(RefreshTableEntry(deadline=10, bank=2))
        table.insert(RefreshTableEntry(deadline=30, bank=3))
        assert table.earliest().bank == 2
        assert [e.deadline for e in table] == [10, 30, 50]

    def test_capacity_enforced(self):
        table = RefreshTable(capacity=2)
        assert table.insert(RefreshTableEntry(deadline=1, bank=0))
        assert table.insert(RefreshTableEntry(deadline=2, bank=0))
        assert not table.insert(RefreshTableEntry(deadline=3, bank=0))
        assert table.full

    def test_earliest_for_bank(self):
        table = RefreshTable()
        table.insert(RefreshTableEntry(deadline=10, bank=2))
        table.insert(RefreshTableEntry(deadline=20, bank=5))
        assert table.earliest_for_bank(5).deadline == 20
        assert table.earliest_for_bank(9) is None

    def test_due_entries(self):
        table = RefreshTable()
        table.insert(RefreshTableEntry(deadline=10, bank=0))
        table.insert(RefreshTableEntry(deadline=99, bank=0))
        assert len(table.due_entries(50)) == 1

    def test_pop_removes(self):
        table = RefreshTable()
        entry = RefreshTableEntry(deadline=10, bank=0, kind=RefreshKind.PREVENTIVE)
        table.insert(entry)
        table.pop(entry)
        assert len(table) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RefreshTable(capacity=0)


class TestRefPtrTable:
    def test_advance_walks_subarray(self):
        geom = Geometry(subarrays_per_bank=4, rows_per_subarray=8)
        table = RefPtrTable(geom)
        rows = [table.advance(0, 2) for __ in range(10)]
        assert rows[0] == geom.row_of(2, 0)
        assert rows[7] == geom.row_of(2, 7)
        assert rows[8] == geom.row_of(2, 0)  # wraps

    def test_counts_and_least_refreshed(self):
        geom = Geometry(subarrays_per_bank=4, rows_per_subarray=8)
        table = RefPtrTable(geom)
        table.advance(0, 1)
        table.advance(0, 1)
        table.advance(0, 3)
        assert table.refreshed_count(0, 1) == 2
        assert table.least_refreshed(0, [1, 3]) == 3
        assert table.least_refreshed(0, []) is None

    def test_reset_window_clears_counts_not_pointers(self):
        geom = Geometry(subarrays_per_bank=4, rows_per_subarray=8)
        table = RefPtrTable(geom)
        table.advance(0, 1)
        table.reset_window()
        assert table.refreshed_count(0, 1) == 0
        assert table.next_row(0, 1) == geom.row_of(1, 1)


class TestPrFifo:
    def test_fifo_order(self):
        fifo = PrFifo(banks=2, depth=4)
        fifo.push(0, PreventiveRequest(row=5, deadline=10))
        fifo.push(0, PreventiveRequest(row=7, deadline=20))
        assert fifo.head(0).row == 5
        assert fifo.pop(0).row == 5
        assert fifo.head(0).row == 7

    def test_depth_limit(self):
        fifo = PrFifo(banks=1, depth=2)
        assert fifo.push(0, PreventiveRequest(1, 1))
        assert fifo.push(0, PreventiveRequest(2, 2))
        assert not fifo.push(0, PreventiveRequest(3, 3))
        assert fifo.full(0)

    def test_per_bank_independence(self):
        fifo = PrFifo(banks=2, depth=1)
        fifo.push(0, PreventiveRequest(1, 1))
        assert fifo.head(1) is None
        assert fifo.total_pending() == 1

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            PrFifo(banks=1, depth=0)


class TestSubarrayPairsTable:
    @pytest.fixture(scope="class")
    def spt(self):
        return SubarrayPairsTable(Geometry(subarrays_per_bank=32, rows_per_subarray=64), coverage=0.32)

    def test_isolated_is_symmetric(self, spt):
        for a in range(32):
            for b in range(32):
                assert spt.isolated(a, b) == spt.isolated(b, a)

    def test_partner_is_isolated(self, spt):
        for sa in range(32):
            partner = spt.partner_subarray(0, sa)
            if partner is not None:
                assert spt.isolated(sa, partner)

    def test_partner_rotates(self, spt):
        partners = {spt.partner_subarray(1, 0) for __ in range(16)}
        assert len(partners) > 1

    def test_refresh_pair_isolated(self, spt):
        pair = spt.refresh_pair(2)
        assert pair is not None
        assert spt.isolated(*pair)

    def test_average_coverage_near_target(self, spt):
        assert spt.average_coverage == pytest.approx(0.32, abs=0.08)


class TestHiraOperation:
    def test_command_counts(self):
        access = HiraOperation(bank=0, refresh_row=1, second_row=2, is_access=True)
        pair = HiraOperation(bank=0, refresh_row=1, second_row=2, is_access=False)
        assert access.command_count() == 3
        assert pair.command_count() == 4

    def test_pair_savings_51_4(self):
        assert refresh_pair_savings() == pytest.approx(0.514, abs=0.002)

    def test_access_latency_6ns(self):
        assert access_after_refresh_latency_ps() == 6_000
