"""Golden regression tests for figure-level outputs.

Scaled-down versions of the paper's headline figures with loose
monotonicity/tolerance checks, so a refactor of the chip model, the
scheduler, or the orchestrator cannot silently bend the reproduction's
results.  These run the same code paths as ``benchmarks/bench_fig4*`` and
``bench_fig9*``, just with smaller samples.
"""

from __future__ import annotations

import pytest

from repro.orchestrator import Sweep, Variant, axis, mix_workloads, run_sweep


class TestFig4CoverageGolden:
    """HiRA coverage vs (t1, t2) on module C0 (Fig. 4, §4.2)."""

    @pytest.fixture(scope="class")
    def grid(self):
        from repro.experiments.coverage import coverage_distribution, tested_row_sample
        from repro.experiments.modules import TESTED_MODULES, build_module_chip

        chip = build_module_chip(TESTED_MODULES[4])  # C0
        rows = tested_row_sample(chip.geometry, chunk=2048, stride=192)
        rows_a = rows[::12]
        return {
            t1: coverage_distribution(
                chip, 0, int(t1 * 1_000), 3_000, tested_rows=rows, rows_a=rows_a
            )
            for t1 in (1.5, 3.0, 6.0)
        }

    def test_no_zero_coverage_rows_at_nominal_t1(self, grid):
        assert grid[3.0].minimum > 0.0

    def test_average_coverage_near_paper_value(self, grid):
        # Paper: ~32% average coverage at t1 = t2 = 3 ns; the subsampled
        # golden run must stay in a loose band around it.
        assert 0.20 < grid[3.0].average < 0.50

    def test_t1_extremes_produce_zero_coverage_rows(self, grid):
        assert grid[1.5].minimum == 0.0
        assert grid[6.0].minimum == 0.0

    def test_centre_beats_extremes(self, grid):
        assert grid[1.5].average < grid[3.0].average
        assert grid[6.0].average < grid[3.0].average


class TestFig9PeriodicRefreshGolden:
    """Periodic-refresh overhead vs capacity (Fig. 9, §8.2)."""

    CAPACITIES = (8.0, 128.0)

    @pytest.fixture(scope="class")
    def ratios(self):
        sweep = Sweep(
            name="golden-fig9",
            axes=(
                axis("capacity_gbit", *self.CAPACITIES),
                axis(
                    "cfg",
                    Variant.make("No Refresh", refresh_mode="none"),
                    Variant.make("Baseline", refresh_mode="baseline"),
                    Variant.make("HiRA-2", refresh_mode="hira", tref_slack_acts=2),
                ),
            ),
            workloads=mix_workloads(2),
            instr_budget=100_000,
        )
        result = run_sweep(sweep, workers=1)
        out = {}
        for capacity in self.CAPACITIES:
            ideal = result.mean_ws(capacity_gbit=capacity, cfg="No Refresh")
            baseline = result.mean_ws(capacity_gbit=capacity, cfg="Baseline")
            hira = result.mean_ws(capacity_gbit=capacity, cfg="HiRA-2")
            out[capacity] = {
                "base_to_ideal": baseline / ideal,
                "hira_to_base": hira / baseline,
                "hira_to_ideal": hira / ideal,
            }
        return out

    def test_baseline_overhead_grows_with_capacity(self, ratios):
        assert (
            ratios[128.0]["base_to_ideal"] < ratios[8.0]["base_to_ideal"]
        ), "refresh overhead must grow with chip capacity"

    def test_baseline_overhead_significant_at_128gbit(self, ratios):
        # Paper: 26.3% overhead at 128 Gbit; the scaled-down run must show
        # at least ~8%.
        assert ratios[128.0]["base_to_ideal"] < 0.92

    def test_hira_recovers_overhead_at_high_capacity(self, ratios):
        # Paper: HiRA-2 improves 12.6% over the baseline at 128 Gbit; the
        # 2-mix golden run keeps a positive (loosely bounded) margin.
        assert ratios[128.0]["hira_to_base"] > 0.99

    def test_hira_never_catastrophic_at_low_capacity(self, ratios):
        assert ratios[8.0]["hira_to_base"] > 0.97

    def test_no_scheme_beats_no_refresh_materially(self, ratios):
        for capacity in self.CAPACITIES:
            assert ratios[capacity]["hira_to_ideal"] <= 1.02
            assert ratios[capacity]["base_to_ideal"] <= 1.02
