"""Execution backends: bit-identical results, retries, dedup, protocol.

The acceptance bar for the backend subsystem: Serial, LocalPool, and
Socket execution of the same sweep return bit-identical ``SimResult``
lists (checked through ``result_to_dict``), worker death re-queues jobs,
fingerprint-mismatched workers are rejected, and overlapping sweeps
sharing a result store recompute zero shared points.  Everything here
must pass on a 1-CPU runner: socket workers run as in-process threads
(plus one subprocess test), and all sweeps are tiny.
"""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.orchestrator import (
    LocalPoolBackend,
    SerialBackend,
    SocketBackend,
    plan_sweep,
    result_to_dict,
    run_sweep,
)
from repro.orchestrator.backends import make_backend
from repro.orchestrator.backends.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    point_from_dict,
    point_to_dict,
    recv_msg,
    send_msg,
)
from repro.orchestrator.backends.server import JobServer, WorkerPoolError
from repro.orchestrator.backends.worker import WorkerRejected, run_session, serve
from repro.orchestrator.hashing import source_fingerprint
from repro.orchestrator.sweep import Sweep, Variant, axis, profile_workloads
from repro.sim.trace import TraceProfile


def tiny_sweep(instr: int = 3_000, name: str = "bk", **kwargs) -> Sweep:
    profiles = [
        TraceProfile(f"t{i}", mpki=18.0, row_locality=0.7) for i in range(8)
    ]
    defaults = dict(
        name=name,
        axes=(
            axis(
                "cfg",
                Variant.make("Baseline", refresh_mode="baseline"),
                Variant.make("HiRA-2", refresh_mode="hira", tref_slack_acts=2),
            ),
        ),
        workloads=profile_workloads(profiles, count=1),
        instr_budget=instr,
        max_cycles=2_000_000,
    )
    defaults.update(kwargs)
    return Sweep(**defaults)


def worker_thread(port: int, **kwargs) -> threading.Thread:
    """A localhost ``repro worker`` running in-process (1-CPU friendly)."""
    options = dict(connect_timeout=20.0, max_sessions=1, heartbeat_interval=0.2)
    options.update(kwargs)
    thread = threading.Thread(
        target=serve, args=("127.0.0.1", port), kwargs=options, daemon=True
    )
    thread.start()
    return thread


def dicts(sweep_result) -> list[dict]:
    return [result_to_dict(r) for r in sweep_result.results]


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_framing_round_trip(self):
        a, b = socket.socketpair()
        try:
            messages = [
                {"type": "heartbeat"},
                {"type": "job", "id": 3, "point": {"nested": [1, 2.5, "x", None]}},
            ]
            for message in messages:
                send_msg(a, message)
            for message in messages:
                assert recv_msg(b) == message
            a.close()
            assert recv_msg(b) is None  # clean EOF
        finally:
            b.close()

    def test_oversized_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 1 << 31))
            with pytest.raises(ProtocolError):
                recv_msg(b)
        finally:
            a.close()
            b.close()

    def test_point_round_trip_preserves_key(self):
        # The content-hash key folds in everything that determines the
        # SimResult, so key equality proves the JSON round trip is exact.
        for point in tiny_sweep().expand():
            clone = point_from_dict(point_to_dict(point))
            assert clone.key == point.key
            assert clone.coords == point.coords
            assert clone.config == point.config
            assert clone.profiles == point.profiles

    def test_point_round_trip_exotic_grid(self):
        sweep = tiny_sweep(
            axes=(
                axis("cfg", Variant.make("HiRA-4", refresh_mode="hira",
                                         tref_slack_acts=4)),
                axis("capacity_gbit", 32.0),
                axis("channels", 2),
                axis("para_nrh", 64.0),
                axis("refresh_granularity", "same_bank"),
            ),
        )
        for point in sweep.expand():
            assert point_from_dict(point_to_dict(point)).key == point.key


# ----------------------------------------------------------------------
# Backend equivalence (the acceptance criterion)
# ----------------------------------------------------------------------
class TestBackendEquivalence:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_sweep(tiny_sweep(), backend="serial")

    def test_serial_backend_reported(self, serial):
        assert serial.backend == "serial"
        assert serial.computed == len(serial)

    def test_local_pool_matches_serial(self, serial):
        local = run_sweep(tiny_sweep(), workers=2)
        assert local.backend == "local"
        assert dicts(local) == dicts(serial)

    def test_socket_thread_worker_matches_serial(self, serial):
        backend = SocketBackend(port=0, registration_timeout=20.0,
                                heartbeat_timeout=5.0)
        thread = worker_thread(backend.port)
        try:
            via_socket = run_sweep(tiny_sweep(), backend=backend)
        finally:
            backend.close()
        thread.join(timeout=10)
        assert via_socket.backend == "socket"
        assert dicts(via_socket) == dicts(serial)

    def test_socket_subprocess_worker_matches_serial(self, serial):
        backend = SocketBackend(port=0, spawn_workers=1,
                                registration_timeout=60.0, heartbeat_timeout=10.0)
        try:
            via_socket = run_sweep(tiny_sweep(), backend=backend)
        finally:
            backend.close()
        assert dicts(via_socket) == dicts(serial)

    def test_two_thread_workers_match_serial(self, serial):
        backend = SocketBackend(port=0, registration_timeout=20.0,
                                heartbeat_timeout=5.0)
        threads = [worker_thread(backend.port) for __ in range(2)]
        try:
            via_socket = run_sweep(tiny_sweep(), backend=backend)
        finally:
            backend.close()
        for thread in threads:
            thread.join(timeout=10)
        assert dicts(via_socket) == dicts(serial)

    def test_make_backend_registry(self):
        backend, owned = make_backend("serial")
        assert isinstance(backend, SerialBackend) and owned
        backend, owned = make_backend(None, workers=3)
        assert isinstance(backend, LocalPoolBackend) and backend.workers == 3
        passed = SerialBackend()
        backend, owned = make_backend(passed)
        assert backend is passed and not owned
        with pytest.raises(ValueError):
            make_backend("mainframe")


# ----------------------------------------------------------------------
# Failure handling
# ----------------------------------------------------------------------
def _handshake(port: int, fingerprint: str | None = None) -> socket.socket:
    sock = socket.create_connection(("127.0.0.1", port), timeout=10.0)
    send_msg(sock, {
        "type": "hello",
        "worker": "test-evil",
        "pid": 0,
        "fingerprint": fingerprint or source_fingerprint(),
        "protocol": PROTOCOL_VERSION,
    })
    return sock


class TestFailureHandling:
    def test_no_worker_registration_times_out(self):
        server = JobServer(port=0, registration_timeout=0.5)
        try:
            with pytest.raises(WorkerPoolError, match="no worker registered"):
                server.serve([(0, tiny_sweep().expand()[0])])
        finally:
            server.close()

    def test_fingerprint_mismatch_rejected(self):
        server = JobServer(port=0, registration_timeout=5.0)
        try:
            sock = _handshake(server.port, fingerprint="deadbeefdeadbeef")
            with pytest.raises(WorkerRejected, match="fingerprint"):
                run_session_welcome(sock)
        finally:
            server.close()

    def test_worker_death_requeues_job(self):
        # An evil worker registers, accepts the first job, and drops the
        # connection without answering; a healthy worker must finish the
        # sweep and the assembled results must still match serial.
        sweep = tiny_sweep()
        serial = run_sweep(sweep, backend="serial")
        backend = SocketBackend(port=0, registration_timeout=20.0,
                                heartbeat_timeout=5.0, max_retries=2)

        died = threading.Event()

        def evil_worker():
            sock = _handshake(backend.port)
            assert recv_msg(sock).get("type") == "welcome"
            job = recv_msg(sock)  # take a job...
            assert job.get("type") == "job"
            sock.close()  # ...and die holding it
            died.set()

        evil = threading.Thread(target=evil_worker, daemon=True)
        evil.start()
        result_box = {}

        def run():
            result_box["result"] = run_sweep(sweep, backend=backend)

        runner = threading.Thread(target=run, daemon=True)
        runner.start()
        assert died.wait(timeout=15), "evil worker never got a job"
        healthy = worker_thread(backend.port)
        runner.join(timeout=60)
        backend.close()
        healthy.join(timeout=10)
        assert not runner.is_alive(), "sweep did not recover from worker death"
        assert dicts(result_box["result"]) == dicts(serial)

    def test_all_workers_dying_fails_instead_of_hanging(self):
        # One worker registers, takes the job, and dies; nobody replaces
        # it.  serve() must give up after the (re-armed) registration
        # timeout rather than wait on the re-queued job forever.
        server = JobServer(port=0, registration_timeout=1.0,
                           heartbeat_timeout=5.0, max_retries=5)
        point = tiny_sweep().expand()[0]

        def doomed_worker():
            sock = _handshake(server.port)
            assert recv_msg(sock).get("type") == "welcome"
            recv_msg(sock)  # accept the job...
            sock.close()  # ...and die; retries remain but workers don't

        threading.Thread(target=doomed_worker, daemon=True).start()
        try:
            with pytest.raises(WorkerPoolError, match="registered workers left"):
                server.serve([(0, point)])
        finally:
            server.close()

    def test_job_exhausting_retries_fails_the_sweep(self):
        server = JobServer(port=0, registration_timeout=10.0,
                           heartbeat_timeout=5.0, max_retries=0)
        point = tiny_sweep().expand()[0]

        def one_shot_evil():
            sock = _handshake(server.port)
            assert recv_msg(sock).get("type") == "welcome"
            recv_msg(sock)  # the job
            sock.close()

        threading.Thread(target=one_shot_evil, daemon=True).start()
        try:
            with pytest.raises(WorkerPoolError, match="failed"):
                server.serve([(0, point)])
        finally:
            server.close()

    def test_worker_error_report_is_fatal(self):
        # A simulation exception on the worker is deterministic: the
        # server must fail the sweep with the traceback, not retry.
        server = JobServer(port=0, registration_timeout=10.0,
                           heartbeat_timeout=5.0)
        point = tiny_sweep().expand()[0]

        def erroring_worker():
            sock = _handshake(server.port)
            assert recv_msg(sock).get("type") == "welcome"
            job = recv_msg(sock)
            send_msg(sock, {"type": "error", "id": job["id"],
                            "error": "ValueError: planted failure"})
            recv_msg(sock)

        threading.Thread(target=erroring_worker, daemon=True).start()
        try:
            with pytest.raises(WorkerPoolError, match="planted failure"):
                server.serve([(0, point)])
        finally:
            server.close()


class TestProtocolRobustness:
    """Corrupt length-prefixed frames from a worker must tear down that
    connection (re-queuing any in-flight job) — never hang the
    ``JobServer`` or fail a sweep that has a healthy worker left."""

    def _sweep_past_evil(self, evil_after_job, max_retries=2):
        sweep = tiny_sweep()
        serial = run_sweep(sweep, backend="serial")
        backend = SocketBackend(port=0, registration_timeout=20.0,
                                heartbeat_timeout=5.0, max_retries=max_retries)
        sent = threading.Event()

        def evil_worker():
            sock = _handshake(backend.port)
            assert recv_msg(sock).get("type") == "welcome"
            job = recv_msg(sock)  # take a job...
            assert job.get("type") == "job"
            try:
                evil_after_job(sock)  # ...and answer with a corrupt frame
            finally:
                sent.set()

        threading.Thread(target=evil_worker, daemon=True).start()
        result_box = {}

        def run():
            result_box["result"] = run_sweep(sweep, backend=backend)

        runner = threading.Thread(target=run, daemon=True)
        runner.start()
        assert sent.wait(timeout=15), "evil worker never got a job"
        healthy = worker_thread(backend.port)
        runner.join(timeout=60)
        backend.close()
        healthy.join(timeout=10)
        assert not runner.is_alive(), "sweep hung after a corrupt frame"
        assert dicts(result_box["result"]) == dicts(serial)

    def test_truncated_frame_requeues_job(self):
        def evil(sock):
            # Header promises 4 KiB, the body stops after 16 bytes.
            sock.sendall(struct.pack(">I", 4096) + b"x" * 16)
            sock.close()

        self._sweep_past_evil(evil)

    def test_garbage_json_frame_requeues_job(self):
        def evil(sock):
            body = b"{this is not json"
            sock.sendall(struct.pack(">I", len(body)) + body)
            # The socket stays open: the server must tear it down anyway.

        self._sweep_past_evil(evil)

    def test_oversized_frame_requeues_job(self):
        def evil(sock):
            # The header alone exceeds the frame cap; no body ever follows,
            # so a server that tried to read it would block forever.
            sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))

        self._sweep_past_evil(evil)

    def test_garbage_hello_never_registers(self):
        server = JobServer(port=0, registration_timeout=5.0)
        sock = None
        try:
            sock = socket.create_connection(("127.0.0.1", server.port), timeout=5.0)
            body = b"\xff\xfe not a hello"
            sock.sendall(struct.pack(">I", len(body)) + body)
            try:
                reply = sock.recv(1)  # server drops the connection: EOF
            except socket.timeout:
                reply = None
            assert not reply, "server answered a garbage hello"
            assert server.workers_seen == 0
        finally:
            if sock is not None:
                sock.close()
            server.close()


def run_session_welcome(sock: socket.socket):
    """Read the registration response the way the worker daemon does."""
    welcome = recv_msg(sock)
    if welcome and welcome.get("type") == "reject":
        raise WorkerRejected(welcome.get("reason", "rejected"))
    return welcome


# ----------------------------------------------------------------------
# Cross-sweep dedup + incremental regeneration
# ----------------------------------------------------------------------
class TestDedupAndIncremental:
    def test_overlapping_sweeps_share_the_store(self, tmp_path):
        store = tmp_path / "store"
        first = run_sweep(tiny_sweep(name="first"), backend="serial", cache=store)
        assert (first.reused, first.computed) == (0, len(first))
        # A *different* sweep whose grid supersets the first: the shared
        # points must replay from the store — zero recomputation.
        wider = tiny_sweep(
            name="second",
            axes=(
                tiny_sweep().axes[0],
                axis("capacity_gbit", 8.0, 32.0),
            ),
        )
        second = run_sweep(wider, backend="serial", cache=store)
        assert second.reused == len(first)
        assert second.computed == len(second) - len(first)
        # Shared cells carry identical results; only the per-sweep stamps
        # (sweep name and grid coordinates) differ.
        shared = second.select(capacity_gbit=8.0)
        for (fp, fr), (sp, sr) in zip(first, shared):
            assert fp.key == sp.key
            fd, sd = result_to_dict(fr), result_to_dict(sr)
            assert fd["meta"].pop("sweep") == "first"
            assert sd["meta"].pop("sweep") == "second"
            fd["meta"].pop("coords"), sd["meta"].pop("coords")
            assert fd == sd

    def test_plan_sweep_diffs_grid_against_store(self, tmp_path):
        store = tmp_path / "store"
        sweep = tiny_sweep()
        cold_plan = plan_sweep(sweep, store)
        assert (cold_plan.reused, cold_plan.computed) == (0, len(cold_plan.points))
        run_sweep(sweep, backend="serial", cache=store)
        warm_plan = plan_sweep(sweep, store)
        assert (warm_plan.reused, warm_plan.computed) == (len(warm_plan.points), 0)
        assert "0 to compute" in warm_plan.describe()

    def test_incremental_run_dispatches_only_missing(self, tmp_path):
        store = tmp_path / "store"
        run_sweep(tiny_sweep(), backend="serial", cache=store)
        wider = tiny_sweep(
            name="wider",
            axes=(tiny_sweep().axes[0], axis("capacity_gbit", 8.0, 32.0)),
        )
        plan = plan_sweep(wider, store)
        assert plan.computed == 2  # only the 32 Gbit cells
        result = run_sweep(wider, backend="serial", cache=store, plan=plan)
        assert result.reused == 2 and result.computed == 2
        # The hit telemetry must reflect the caller's plan, not read as a
        # cold run just because the plan consumed the hits pre-call.
        assert result.cache_hits == 2 and result.cache_misses == 2
        assert all(r is not None for r in result.results)

    def test_fully_cached_run_never_builds_a_backend(self, tmp_path):
        store = tmp_path / "store"
        run_sweep(tiny_sweep(), backend="serial", cache=store)

        class Exploding(SerialBackend):
            def run_jobs(self, jobs):
                raise AssertionError("backend used despite full store hit")

        warm = run_sweep(tiny_sweep(), backend=Exploding(), cache=store)
        assert warm.computed == 0 and warm.reused == len(warm)
